(** Append-only causal event DAG of a replica run.

    One node per replica state: the seed, the result of an update, each
    side of a fork, the result of a join.  Parent edges point at the
    state(s) the node was derived from, so the DAG is exactly the
    fork/update/join causal structure of the execution — the artifact
    the [vstamp trace] forensics record, replay and explain.

    Nodes carry stable ids (allocation order, starting at 0), the
    {e logical step} at which they were created (deterministic — never a
    wall clock), the frontier position they occupied at creation, and a
    free-form textual label (typically the stamp in paper notation).

    The structure is append-only: nodes can be added, never removed or
    edited, and a parent must already exist when its child is added.
    [of_events (to_events t)] and [of_jsonl (to_jsonl t)] recover [t]
    exactly. *)

type kind =
  | Seed  (** An initial replica; no parents. *)
  | Update  (** Result of a local update; one parent. *)
  | Fork_left  (** Left (position-keeping) result of a fork; one parent. *)
  | Fork_right  (** Right (new sibling) result of a fork; one parent. *)
  | Join  (** Result of merging two replicas; two parents. *)

val kind_to_string : kind -> string
(** ["seed"] / ["update"] / ["fork.l"] / ["fork.r"] / ["join"]. *)

val kind_of_string : string -> kind option

type node = {
  id : int;  (** Stable id: position in allocation order. *)
  step : int;  (** Logical step stamp of the creating operation. *)
  kind : kind;
  parents : int list;  (** Ids of the derived-from nodes, all [< id]. *)
  replica : int;  (** Frontier position at creation. *)
  label : string;  (** Payload, e.g. the stamp in paper notation. *)
}

type t

val create : unit -> t

val add :
  t ->
  step:int ->
  kind:kind ->
  parents:int list ->
  replica:int ->
  label:string ->
  int
(** Append a node and return its id.
    @raise Invalid_argument if a parent id is out of range, if the
    parent count does not match the kind (0 for [Seed], 1 for
    [Update]/[Fork_left]/[Fork_right], 2 for [Join]), or if [step] or
    [replica] is negative. *)

val length : t -> int

val nodes : t -> node list
(** All nodes in id order. *)

val node : t -> int -> node option

val equal : t -> t -> bool

(** {1 DAG queries} *)

val ancestors : t -> int -> int list
(** Ids of the node and all its transitive parents, ascending.
    @raise Invalid_argument on an out-of-range id. *)

val latest_common_ancestor : t -> int -> int -> int option
(** The highest-id node that is an ancestor (inclusive) of both — where
    the two lineages last shared state. *)

val find_by_label : t -> string -> int option
(** The {e latest} node carrying the label, if any. *)

(** {1 JSONL form (canonical, round-trips)} *)

val to_events : t -> Event.t list
(** One [trace.node] event per node (step-stamped, deterministic),
    preceded by a [trace.meta] header carrying the node count. *)

val of_events : Event.t list -> (t, string) result
(** Strict inverse of {!to_events}; also accepts a stream without the
    [trace.meta] header.  Node ids must be consecutive from 0 and every
    structural rule of {!add} is re-validated. *)

val to_jsonl : t -> string
(** One event per line, trailing newline included. *)

val of_jsonl : string -> (t, string) result
(** Parses {!to_jsonl} output; blank lines are ignored. *)

(** {1 Graphviz DOT} *)

val to_dot : t -> string
(** A [digraph] with one node per DAG node (label escaped — quotes,
    backslashes and newlines in stamp text cannot break the syntax) and
    one edge per parent link. *)

(** {1 Chrome trace-event JSON (Perfetto-loadable)} *)

val to_chrome : t -> Jsonx.t
(** [{"traceEvents": [...]}]: one complete ([ph:"X"]) slice per node
    (timestamps are the logical step in microseconds, [tid] the frontier
    position at creation) plus a flow-event pair ([ph:"s"]/[ph:"f"]) per
    parent edge, so the causal arrows render in Perfetto / chrome://tracing. *)
