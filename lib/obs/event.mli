(** Structured telemetry events with a one-line JSON encoding (JSONL).

    An event is a name, a timestamp, and ordered fields.  Timestamps are
    either a {e logical step} (deterministic — the form used by the
    simulator so traces are byte-identical across runs with the same
    seed) or wall-clock nanoseconds.  The encoding is canonical: field
    order is preserved, so [to_string] is deterministic for a given
    event. *)

type timestamp =
  | Step of int  (** Logical step counter — deterministic. *)
  | Wall_ns of int64  (** Wall-clock nanoseconds — not deterministic. *)
  | Untimed

type t = { ts : timestamp; name : string; fields : (string * Jsonx.t) list }

val v : ?ts:timestamp -> string -> (string * Jsonx.t) list -> t
(** [v name fields] with [ts] defaulting to [Untimed]. *)

val equal : t -> t -> bool

val to_json : t -> Jsonx.t
(** [{"event": name, ("step" | "wall_ns")?, ...fields}].  The reserved
    keys ["event"], ["step"], ["wall_ns"] must not appear in
    [fields]. *)

val of_json : Jsonx.t -> (t, string) result

val to_string : t -> string
(** One JSONL line, without the trailing newline. *)

val of_string : string -> (t, string) result
