type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | _ -> false

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* floats must keep a '.' or exponent so they parse back as floats; %.17g
   is lossless for doubles *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing --- *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    (* encode a unicode scalar value as UTF-8 bytes *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let c1 = hex4 () in
               if c1 >= 0xD800 && c1 <= 0xDBFF then begin
                 (* surrogate pair *)
                 if
                   !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let c2 = hex4 () in
                   if c2 < 0xDC00 || c2 > 0xDFFF then fail "bad surrogate pair";
                   add_utf8 buf
                     (0x10000 + ((c1 - 0xD800) lsl 10) + (c2 - 0xDC00))
                 end
                 else fail "lone high surrogate"
               end
               else if c1 >= 0xDC00 && c1 <= 0xDFFF then fail "lone low surrogate"
               else add_utf8 buf c1
           | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ();
        incr d
      done;
      if !d = 0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (off, msg) ->
      Error (Printf.sprintf "at offset %d: %s" off msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
