(** Where events go: nowhere, memory, or a channel as JSONL. *)

type t

val null : t
(** Drops everything. *)

val memory : unit -> t
(** Buffers events in order; read them back with {!contents}. *)

val contents : t -> Event.t list
(** Events of a {!memory} sink, oldest first; [[]] for other sinks. *)

val of_channel : ?flush_each:bool -> out_channel -> t
(** One JSONL line per event.  The channel is not closed by {!close};
    it belongs to the caller. *)

val to_file : string -> t
(** Open (truncate) a file for JSONL output; {!close} closes it. *)

val emit : t -> Event.t -> unit

val emitted : t -> int
(** Events accepted so far (including by [null]). *)

val close : t -> unit
