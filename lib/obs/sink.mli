(** Where events go: nowhere, memory, a channel as JSONL, a callback, or
    several places at once. *)

type t

val null : t
(** Drops everything. *)

val memory : unit -> t
(** Buffers events in order; read them back with {!contents}. *)

val contents : t -> Event.t list
(** Events of a {!memory} sink, oldest first; [[]] for other sinks
    (including a {!tee} of memory sinks — read the children). *)

val of_channel : ?flush_each:bool -> out_channel -> t
(** One JSONL line per event.  The channel is not closed by {!close};
    it belongs to the caller. *)

val to_file : ?fsync:bool -> string -> t
(** Open (truncate) a file for JSONL output; {!close} closes it.

    Durability: the sink registers an [at_exit] hook that flushes (and,
    with [fsync], [Unix.fsync]s — the default) the file, so a process
    that exits or dies on an uncaught exception does not truncate the
    stream mid-line.  Signal deaths bypass [at_exit]; long-running
    drivers should install handlers that call {!flush} or {!close}
    (the [vstamp soak] driver does). *)

val of_fn : (Event.t -> unit) -> t
(** Every event goes to the callback — the hook for live subscribers
    such as {!Http_export.event_sink}. *)

val tee : t -> t -> t
(** Events go to both sinks (each child's {!emitted} count advances).
    {!flush} and {!close} apply to both children. *)

val emit : t -> Event.t -> unit

val emitted : t -> int
(** Events accepted so far (including by [null]). *)

val flush : t -> unit
(** Push buffered output to the OS (and disk, for a fsyncing
    {!to_file} sink).  No-op for memory and null sinks. *)

val close : t -> unit
