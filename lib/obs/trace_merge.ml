(* Merging per-node span logs into one causally ordered timeline.

   Nodes have no synchronized clocks, so wall time cannot order spans
   across processes; the version stamps the spans carry can (the
   paper's Prop. 5.1: stamp order coincides with causal-history
   order).  The merge therefore topologically sorts spans along two
   edge families — strict stamp order between spans sharing a trace
   and a stamp domain, and parent links — and uses (wall time, node,
   span id) only to break ties deterministically.

   This library cannot depend on the stamp mechanism (vstamp.obs sits
   below vstamp.core), so the comparison arrives as a callback over
   the text labels: [leq a b = Some true/false] when both labels
   parse, [None] when either does not. *)

type leq = string -> string -> bool option

type report = {
  rp_spans : int;
  rp_nodes : string list;
  rp_stamped : int;
  rp_ordered_pairs : int;
  rp_cross_node_ordered_pairs : int;
  rp_contradictions : (Trace_ctx.span * Trace_ctx.span) list;
}

let read_file file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error m -> Error m

let load_file file =
  match read_file file with
  | Error m -> Error (Printf.sprintf "%s: %s" file m)
  | Ok s -> (
      match Trace_ctx.spans_of_jsonl s with
      | Ok spans -> Ok spans
      | Error m -> Error (Printf.sprintf "%s: %s" file m))

(* deterministic tiebreak: wall time, then node, then span id *)
let span_key s =
  Trace_ctx.(s.sp_start_ns, s.sp_node, s.sp_id, s.sp_name)

(* Stamps are compared only inside one (trace, domain) scope: labels
   from unrelated seed lineages can be formally ordered while sharing
   no causal context, and comparing them would fabricate edges.

   Within a scope, spans are grouped by their label text before any
   comparison happens.  Long-running processes saturate their stamps
   (repeated updates without communication are absorbed), so a span
   log typically carries few distinct labels over many spans —
   comparing label pairs instead of span pairs is what keeps merging
   a multi-thousand-span cluster run sub-second where the naive
   all-pairs scan runs for minutes. *)
let scope_groups arr =
  let scopes : (string, (string, int list ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun i s ->
      match (s.Trace_ctx.sp_domain, s.Trace_ctx.sp_stamp) with
      | Some domain, Some label ->
          let key = s.Trace_ctx.sp_trace ^ "\x00" ^ domain in
          let groups =
            match Hashtbl.find_opt scopes key with
            | Some g -> g
            | None ->
                let g = Hashtbl.create 8 in
                Hashtbl.add scopes key g;
                g
          in
          (match Hashtbl.find_opt groups label with
          | Some members -> members := i :: !members
          | None -> Hashtbl.add groups label (ref [ i ]))
      | _ -> ())
    arr;
  scopes

(* The label-pair memo is bounded with the same reset-on-full
   discipline as [Name_packed]'s memo tables: a week-long cluster
   merge with many distinct labels degrades to recomputation instead
   of growing memory without limit. *)
let default_memo_limit = 1 lsl 16

let memo_limit_ref = ref default_memo_limit

let set_memo_limit n =
  if n < 1 then invalid_arg "Trace_merge.set_memo_limit: limit < 1";
  memo_limit_ref := n

let memo_resets_count = ref 0

let memo_resets () = !memo_resets_count

(* iterate [f a_index b_index] over every span pair whose labels are
   strictly ordered within a scope; each distinct label pair is
   compared through [leq] once per memo generation *)
let iter_ordered_pairs ~(leq : leq) scopes f =
  let strict_cache : (string * string, bool) Hashtbl.t =
    Hashtbl.create 64
  in
  let strict la lb =
    match Hashtbl.find_opt strict_cache (la, lb) with
    | Some v -> v
    | None ->
        let v =
          match (leq la lb, leq lb la) with
          | Some true, Some false -> true
          | _ -> false
        in
        if Hashtbl.length strict_cache >= !memo_limit_ref then begin
          Hashtbl.reset strict_cache;
          incr memo_resets_count
        end;
        Hashtbl.add strict_cache (la, lb) v;
        v
  in
  Hashtbl.iter
    (fun _ groups ->
      let labels =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun l members acc -> (l, !members) :: acc) groups [])
      in
      List.iter
        (fun (la, ma) ->
          List.iter
            (fun (lb, mb) ->
              if not (String.equal la lb) && strict la lb then
                List.iter (fun i -> List.iter (fun j -> f i j) mb) ma)
            labels)
        labels)
    scopes

let merge ~leq spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  let edge i j =
    succs.(i) <- j :: succs.(i);
    indeg.(j) <- indeg.(j) + 1
  in
  let by_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i s -> Hashtbl.replace by_id s.Trace_ctx.sp_id i) arr;
  Array.iteri
    (fun j s ->
      match s.Trace_ctx.sp_parent with
      | Some p -> (
          match Hashtbl.find_opt by_id p with
          | Some i when i <> j -> edge i j
          | _ -> ())
      | None -> ())
    arr;
  iter_ordered_pairs ~leq (scope_groups arr) edge;
  (* Kahn's algorithm, always extracting the ready span with the least
     (wall, node, id) key: the output is a linear extension of the
     causal partial order and is independent of input order. *)
  let module Ready = Set.Make (struct
    type t = (int64 * string * string * string) * int

    let compare = compare
  end) in
  let out = ref [] in
  let remaining = ref n in
  let ready = ref Ready.empty in
  let enqueue i = ready := Ready.add (span_key arr.(i), i) !ready in
  for i = n - 1 downto 0 do
    if indeg.(i) = 0 then enqueue i
  done;
  let continue = ref true in
  while !continue do
    match Ready.min_elt_opt !ready with
    | None -> continue := false
    | Some ((_, i) as elt) ->
        ready := Ready.remove elt !ready;
        out := i :: !out;
        decr remaining;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then enqueue j)
          succs.(i)
  done;
  (* a cycle cannot arise from a partial order plus parent links, but
     if corrupt input produces one, append the leftovers by key *)
  if !remaining > 0 then begin
    let leftovers = ref [] in
    let emitted = Hashtbl.create n in
    List.iter (fun i -> Hashtbl.replace emitted i ()) !out;
    for i = 0 to n - 1 do
      if not (Hashtbl.mem emitted i) then leftovers := i :: !leftovers
    done;
    let sorted =
      List.sort
        (fun i j -> compare (span_key arr.(i)) (span_key arr.(j)))
        !leftovers
    in
    out := List.rev_append sorted !out
  end;
  List.rev_map (fun i -> arr.(i)) !out

let validate ~leq spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  let ordered = ref 0 in
  let cross = ref 0 in
  let contras = ref [] in
  iter_ordered_pairs ~leq (scope_groups arr)
    (fun i j ->
      incr ordered;
      if not (String.equal arr.(i).Trace_ctx.sp_node arr.(j).Trace_ctx.sp_node)
      then incr cross;
      (* wall clock contradicts stamp order only when the causally
         later span finished entirely before the earlier one began —
         overlap is expected for nested or concurrent intervals *)
      if
        Int64.compare arr.(j).Trace_ctx.sp_end_ns
          arr.(i).Trace_ctx.sp_start_ns
        < 0
      then contras := (arr.(i), arr.(j)) :: !contras);
  (* input-order independence: the pair visit order above depends on
     hashing, so the listed contradictions are sorted *)
  let contras =
    List.sort
      (fun (a1, b1) (a2, b2) ->
        match compare (span_key a1) (span_key a2) with
        | 0 -> compare (span_key b1) (span_key b2)
        | c -> c)
      !contras
  in
  let module SS = Set.Make (String) in
  let nodes =
    SS.elements
      (Array.fold_left
         (fun acc s -> SS.add s.Trace_ctx.sp_node acc)
         SS.empty arr)
  in
  {
    rp_spans = n;
    rp_nodes = nodes;
    rp_stamped =
      Array.fold_left
        (fun acc s ->
          match s.Trace_ctx.sp_stamp with Some _ -> acc + 1 | None -> acc)
        0 arr;
    rp_ordered_pairs = !ordered;
    rp_cross_node_ordered_pairs = !cross;
    rp_contradictions = contras;
  }

let report_schema = "vstamp-causal-report/1"

let contradiction_json (a, b) =
  let side s =
    Trace_ctx.(
      Jsonx.Obj
        ([
           ("span", Jsonx.String s.sp_id);
           ("node", Jsonx.String s.sp_node);
           ("name", Jsonx.String s.sp_name);
           ("start_ns", Jsonx.Int (Int64.to_int s.sp_start_ns));
           ("end_ns", Jsonx.Int (Int64.to_int s.sp_end_ns));
         ]
        @ match s.sp_stamp with
          | Some st -> [ ("stamp", Jsonx.String st) ]
          | None -> []))
  in
  Jsonx.Obj [ ("stamp_before", side a); ("wall_before", side b) ]

let report_json r =
  Jsonx.Obj
    [
      ("schema", Jsonx.String report_schema);
      ("spans", Jsonx.Int r.rp_spans);
      ("nodes", Jsonx.List (List.map (fun n -> Jsonx.String n) r.rp_nodes));
      ("stamped", Jsonx.Int r.rp_stamped);
      ("ordered_pairs", Jsonx.Int r.rp_ordered_pairs);
      ("cross_node_ordered_pairs", Jsonx.Int r.rp_cross_node_ordered_pairs);
      ("contradiction_count", Jsonx.Int (List.length r.rp_contradictions));
      ( "contradictions",
        Jsonx.List (List.map contradiction_json r.rp_contradictions) );
    ]

(* --- Chrome trace-event export --- *)

(* One lane ([pid]) per node, spans as complete ("X") events in merged
   order; a [seq] argument records each span's position in the causal
   linearization so the ordering survives Chrome's own re-sorting by
   timestamp. *)
let to_chrome spans =
  let module SS = Set.Make (String) in
  let nodes =
    SS.elements
      (List.fold_left
         (fun acc s -> SS.add s.Trace_ctx.sp_node acc)
         SS.empty spans)
  in
  let lane = Hashtbl.create 8 in
  List.iteri (fun i nd -> Hashtbl.replace lane nd (i + 1)) nodes;
  let metadata =
    List.concat_map
      (fun nd ->
        let pid = Hashtbl.find lane nd in
        [
          Jsonx.Obj
            [
              ("name", Jsonx.String "process_name");
              ("ph", Jsonx.String "M");
              ("pid", Jsonx.Int pid);
              ("tid", Jsonx.Int 0);
              ("args", Jsonx.Obj [ ("name", Jsonx.String nd) ]);
            ];
          Jsonx.Obj
            [
              ("name", Jsonx.String "process_sort_index");
              ("ph", Jsonx.String "M");
              ("pid", Jsonx.Int pid);
              ("tid", Jsonx.Int 0);
              ("args", Jsonx.Obj [ ("sort_index", Jsonx.Int pid) ]);
            ];
        ])
      nodes
  in
  let events =
    List.mapi
      (fun seq s ->
        let open Trace_ctx in
        let ts_us = Int64.to_int (Int64.div s.sp_start_ns 1000L) in
        let dur_us =
          max 1
            (Int64.to_int
               (Int64.div (Int64.sub s.sp_end_ns s.sp_start_ns) 1000L))
        in
        let args =
          [ ("span", Jsonx.String s.sp_id); ("seq", Jsonx.Int seq) ]
          @ (match s.sp_parent with
            | Some p -> [ ("parent", Jsonx.String p) ]
            | None -> [])
          @ (match s.sp_stamp with
            | Some st -> [ ("stamp", Jsonx.String st) ]
            | None -> [])
          @ s.sp_attrs
        in
        Jsonx.Obj
          [
            ("name", Jsonx.String s.sp_name);
            ("cat", Jsonx.String "vstamp");
            ("ph", Jsonx.String "X");
            ("ts", Jsonx.Int ts_us);
            ("dur", Jsonx.Int dur_us);
            ("pid", Jsonx.Int (Hashtbl.find lane s.sp_node));
            ("tid", Jsonx.Int 0);
            ("args", Jsonx.Obj args);
          ])
      spans
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (metadata @ events));
      ("displayTimeUnit", Jsonx.String "ms");
      ( "otherData",
        Jsonx.Obj [ ("generator", Jsonx.String "vstamp trace merge") ] );
    ]
