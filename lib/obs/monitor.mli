(** Incremental runtime invariant monitors.

    A monitor is a named check evaluated repeatedly along a run (e.g.
    the frontier invariants I1–I3 after every simulator step).  Each
    evaluation bumps [vstamp_invariant_checks_total{monitor=...}] in the
    registry; a failing one additionally bumps
    [vstamp_invariant_violations_total{monitor=...}], remembers the
    first witness, and emits a structured [invariant.violation] event
    (step-stamped, deterministic) into the sink.

    The monitor is policy-free: it neither raises nor stops the run —
    callers decide whether a violation is fatal (the simulator's
    [?check_invariants] wiring fails loudly with a minimal prefix
    trace). *)

type t

val create : ?registry:Registry.t -> ?sink:Sink.t -> string -> t
(** [create name] registers the check/violation counter pair (labelled
    [{monitor=name}]) in [registry] (default {!Registry.default}). *)

val name : t -> string

val check : t -> step:int -> (unit -> (string * Jsonx.t) list) -> bool
(** Evaluate the check at the given logical step.  The thunk returns a
    {e witness}: an empty field list means the invariant holds; a
    non-empty one describes the violation and becomes the fields of the
    emitted [invariant.violation] event (after the [monitor] name
    field).  Returns [true] iff the check passed. *)

val checks : t -> int
(** Evaluations so far. *)

val violations : t -> int

val first_violation : t -> (int * (string * Jsonx.t) list) option
(** Step and witness of the earliest failure, if any. *)
