(** Incremental runtime invariant monitors.

    A monitor is a named check evaluated repeatedly along a run (e.g.
    the frontier invariants I1–I3 after every simulator step).  Each
    evaluation bumps [vstamp_invariant_checks_total{monitor=...}] in the
    registry; a failing one additionally bumps
    [vstamp_invariant_violations_total{monitor=...}], remembers the
    first witness, and emits a structured [invariant.violation] event
    (step-stamped, deterministic) into the sink.

    Full checking is expensive — I2/I3 are quadratic in frontier width —
    so a monitor can carry a {e sampling policy} that evaluates only a
    subset of the offered steps.  Skipped steps still count into
    [steps_seen] and the [vstamp_monitor_coverage{monitor=...}] gauge,
    and every violation event records the sampling decision (the policy,
    the previous checked step, the seen/checked totals) so a violation
    found under sampling pins down the exact window — [(prev_checked,
    step]] — to replay with full checking.

    The monitor is policy-free: it neither raises nor stops the run —
    callers decide whether a violation is fatal (the simulator's
    [?check_invariants] wiring fails loudly with a minimal prefix
    trace). *)

type t

type sampling =
  | Always  (** Check every offered step (the default). *)
  | Every_n of int  (** Check the first offered step, then every nth. *)
  | Probability of float
      (** Check each step independently with this probability, using the
          [sample] draw supplied to {!create}. *)

val sampling_to_string : sampling -> string
(** ["always"], ["every_n:100"], ["probability:0.01"] — the form carried
    by violation events. *)

val create :
  ?registry:Registry.t ->
  ?sink:Sink.t ->
  ?sampling:sampling ->
  ?sample:(unit -> float) ->
  string ->
  t
(** [create name] registers the check/violation counter pair and the
    coverage gauge (labelled [{monitor=name}]) in [registry] (default
    {!Registry.default}).

    [sampling] defaults to [Always].  [sample] supplies the uniform
    [[0, 1)] draw behind [Probability] — pass the simulation's
    deterministic RNG to keep runs reproducible; the default is a
    built-in fixed-seed splitmix64, also deterministic.

    @raise Invalid_argument on [Every_n n] with [n <= 0] or
    [Probability p] outside [[0, 1]]. *)

val name : t -> string

val sampling : t -> sampling

val check : t -> ?force:bool -> step:int -> (unit -> (string * Jsonx.t) list) -> bool
(** Offer the check at the given logical step.  If the sampling policy
    elects to skip it (never when [force] is [true], which callers use
    for must-check points like a run's final frontier), the thunk is not
    evaluated and the result is [true].

    Otherwise the thunk returns a {e witness}: an empty field list means
    the invariant holds; a non-empty one describes the violation and
    becomes the fields of the emitted [invariant.violation] event (after
    the [monitor], [sampling], [prev_checked_step], [steps_seen] and
    [steps_checked] fields).  Returns [true] iff the check passed or was
    skipped. *)

val checks : t -> int
(** Evaluations so far (skipped steps excluded). *)

val steps_seen : t -> int
(** Steps offered so far, checked or skipped. *)

val coverage : t -> float
(** [checks / steps_seen]; [1.] before any step is offered. *)

val last_checked_step : t -> int option
(** The most recent step actually evaluated. *)

val violations : t -> int

val first_violation : t -> (int * (string * Jsonx.t) list) option
(** Step and witness of the earliest failure, if any. *)
