type t = {
  name : string;
  checks : Metric.counter;
  violations : Metric.counter;
  sink : Sink.t option;
  mutable first : (int * (string * Jsonx.t) list) option;
}

let create ?(registry = Registry.default) ?sink name =
  {
    name;
    checks =
      Registry.counter registry
        (Printf.sprintf "vstamp_invariant_checks_total{monitor=%S}" name);
    violations =
      Registry.counter registry
        (Printf.sprintf "vstamp_invariant_violations_total{monitor=%S}" name);
    sink;
    first = None;
  }

let name t = t.name

let check t ~step witness =
  Metric.inc t.checks;
  match witness () with
  | [] -> true
  | fields ->
      Metric.inc t.violations;
      if t.first = None then t.first <- Some (step, fields);
      (match t.sink with
      | None -> ()
      | Some sink ->
          Sink.emit sink
            (Event.v ~ts:(Event.Step step) "invariant.violation"
               (("monitor", Jsonx.String t.name) :: fields)));
      false

let checks t = Metric.count t.checks

let violations t = Metric.count t.violations

let first_violation t = t.first
