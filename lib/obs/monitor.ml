type sampling = Always | Every_n of int | Probability of float

let sampling_to_string = function
  | Always -> "always"
  | Every_n n -> Printf.sprintf "every_n:%d" n
  | Probability p -> Printf.sprintf "probability:%g" p

(* Default uniform draw behind [Probability] when the caller injects no
   RNG: splitmix64 from a fixed seed, so even the fallback is
   deterministic. *)
let default_sample () =
  let state = ref 0x9e3779b97f4a7c15L in
  fun () ->
    state := Int64.add !state 0x9e3779b97f4a7c15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

type t = {
  name : string;
  sampling : sampling;
  sample : unit -> float;
  checks : Metric.counter;
  violations : Metric.counter;
  coverage : Metric.gauge;
  sink : Sink.t option;
  mutable seen : int;
  mutable last_checked : int option;
  mutable first : (int * (string * Jsonx.t) list) option;
}

let create ?(registry = Registry.default) ?sink ?(sampling = Always) ?sample
    name =
  (match sampling with
  | Every_n n when n <= 0 ->
      invalid_arg "Monitor.create: Every_n needs a positive period"
  | Probability p when not (p >= 0.0 && p <= 1.0) ->
      invalid_arg "Monitor.create: Probability needs p in [0, 1]"
  | _ -> ());
  {
    name;
    sampling;
    sample = (match sample with Some f -> f | None -> default_sample ());
    checks =
      Registry.counter registry
        (Printf.sprintf "vstamp_invariant_checks_total{monitor=%S}" name);
    violations =
      Registry.counter registry
        (Printf.sprintf "vstamp_invariant_violations_total{monitor=%S}" name);
    coverage =
      Registry.gauge registry
        (Printf.sprintf "vstamp_monitor_coverage{monitor=%S}" name);
    sink;
    seen = 0;
    last_checked = None;
    first = None;
  }

let name t = t.name

let sampling t = t.sampling

let elects t =
  match t.sampling with
  | Always -> true
  | Every_n n -> t.seen mod n = 0
  | Probability p -> t.sample () < p

let check t ?(force = false) ~step witness =
  let chosen = force || elects t in
  t.seen <- t.seen + 1;
  let update_coverage () =
    Metric.set t.coverage
      (float_of_int (Metric.count t.checks) /. float_of_int t.seen)
  in
  if not chosen then begin
    update_coverage ();
    true
  end
  else begin
    let prev_checked = t.last_checked in
    Metric.inc t.checks;
    t.last_checked <- Some step;
    update_coverage ();
    match witness () with
    | [] -> true
    | fields ->
        Metric.inc t.violations;
        if t.first = None then t.first <- Some (step, fields);
        (match t.sink with
        | None -> ()
        | Some sink ->
            (* the sampling decision travels with the witness: a
               violation first seen here arose somewhere in
               (prev_checked_step, step], the window to replay with full
               checking *)
            Sink.emit sink
              (Event.v ~ts:(Event.Step step) "invariant.violation"
                 ([
                    ("monitor", Jsonx.String t.name);
                    ("sampling", Jsonx.String (sampling_to_string t.sampling));
                    ( "prev_checked_step",
                      match prev_checked with
                      | Some s -> Jsonx.Int s
                      | None -> Jsonx.Null );
                    ("steps_seen", Jsonx.Int t.seen);
                    ("steps_checked", Jsonx.Int (Metric.count t.checks));
                  ]
                 @ fields)));
        false
  end

let checks t = Metric.count t.checks

let steps_seen t = t.seen

let coverage t =
  if t.seen = 0 then 1.0
  else float_of_int (Metric.count t.checks) /. float_of_int t.seen

let last_checked_step t = t.last_checked

let violations t = Metric.count t.violations

let first_violation t = t.first
