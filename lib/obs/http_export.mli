(** Embedded telemetry server: live introspection of a running process.

    A background-thread HTTP/1.1 listener (Unix sockets and [Thread]
    only — no web framework) that exposes the observability state the
    rest of [vstamp.obs] accumulates:

    - [GET /metrics] — Prometheus text exposition of the registry
      ({!Registry.to_prometheus}), scrapeable by a stock Prometheus;
    - [GET /healthz] — one JSON object: status, uptime, request and
      event totals, the summed invariant-violation counters, plus any
      fields the embedding process adds via its [health] callback
      (the soak driver reports its last-step watermark here);
    - [GET /stats.json] — the full registry snapshot
      ({!Registry.to_json}), the input to {!Registry.diff} and the
      [vstamp top] dashboard;
    - [GET /lag.json] — the convergence view of the registry
      ({!Convergence.lag_json}): per-replica lag, divergence-pair
      counts, frontier width/entropy, convergence timing and the
      sync-delta accounting totals;
    - [GET /idspace.json] — the identity-space view of the registry
      ({!Idspace.view_json}): the [vstamp_idspace_*] families — live
      replicas, fragment counts, id bits vs the oracle minimum,
      fragmentation entropy, audit-violation count and the fork/join/
      retire op totals — as published by the churn scenario;
    - [GET /range.json] — the flight-recorder query endpoint (requires
      a {!Tsdb.t} passed to {!create}): with [?metric=NAME] the rolled
      -up history of one series over [?from=]/[?to=] (unix seconds, or
      negative offsets relative to now; default the last 5 minutes) in
      [?step=]-second buckets; without [metric], the series index and
      store statistics;
    - [GET /alerts.json] — the alert engine's state ({!Alert.to_json}:
      per-rule state, values and the firing/resolved timeline;
      requires an {!Alert.t} passed to {!create});
    - [GET /events] — chunked streaming of the live event feed: the
      ring of recent events first, then every event published through
      {!event_sink} as it happens, one JSONL line per chunk;
    - [GET /events.json] — the ring of recent events as a JSON array
      ([?n=N] limits to the newest N);
    - [GET /cluster.json] — the federation roll-up (requires a
      [cluster] callback passed to {!create}; 404 otherwise): the
      multi-process soak parent serves {!Cluster.collect} here;
    - [GET /peers.json] — the peer-lifecycle snapshot of a networked
      [vstamp serve] node (requires a [peers] callback passed to
      {!create}; 404 otherwise): per-peer connection state, reconnect
      attempts and sync-round counts.

    [HEAD] is answered for every endpoint with the headers the
    corresponding [GET] would send and no body; any other method gets
    [405 Method Not Allowed] with an [Allow: GET, HEAD] header.

    Each connection is served by its own thread, so concurrent scrapes
    do not block one another or the embedding process.  {!stop} is
    graceful: in-flight responses finish, streaming clients get a
    terminating chunk, and all threads are joined. *)

type t

val create :
  ?registry:Registry.t ->
  ?health:(unit -> (string * Jsonx.t) list) ->
  ?tsdb:Tsdb.t ->
  ?alerts:Alert.t ->
  ?cluster:(unit -> Jsonx.t) ->
  ?peers:(unit -> Jsonx.t) ->
  ?recent:int ->
  ?addr:string ->
  port:int ->
  unit ->
  t
(** Bind [addr] (default loopback) on [port] ([0] picks an ephemeral
    port — read it back with {!port}) and start the accept thread.
    [registry] defaults to {!Registry.default}; [health] contributes
    extra [/healthz] fields; [tsdb]/[alerts] enable [/range.json] and
    [/alerts.json] (404 otherwise); [cluster] enables [/cluster.json]
    — it runs in the connection thread on every hit, so a fan-out
    roll-up never blocks the embedding process; [peers] enables
    [/peers.json]; [recent] is the event-ring capacity (default 64).

    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful after [~port:0]). *)

val event_sink : t -> Sink.t
(** A sink that fans events out to every connected [/events] client
    and into the recent-events ring.  Tee it with a file sink to both
    persist and stream ({!Sink.tee}). *)

val recent_events : t -> Event.t list
(** The ring contents, oldest first. *)

val requests : t -> int
(** Requests served so far. *)

val running : t -> bool

val stop : t -> unit
(** Graceful shutdown; idempotent.  Joins the accept thread and every
    connection thread. *)

(** {1 A minimal HTTP client}

    Enough of HTTP/1.1 to scrape the server above (and anything as
    simple): one GET, [Connection: close], chunked decoding.  Used by
    [vstamp top] and the serve smoke tests. *)

module Client : sig
  val request :
    ?host:string ->
    ?timeout_s:float ->
    ?meth:string ->
    port:int ->
    string ->
    (int * (string * string) list * string, string) result
  (** [request ~port path]: status code, response headers (names
      lowercased, values trimmed) and (de-chunked) body.  [host]
      defaults to loopback, [meth] to ["GET"], and [timeout_s] — the
      socket send/receive timeout, so a stalled endpoint surfaces as
      an [Error] instead of hanging the caller — to 5 seconds. *)

  val get :
    ?host:string ->
    ?timeout_s:float ->
    port:int ->
    string ->
    (int * string, string) result
  (** {!request} without the headers. *)
end
