(* Declarative alerting over registry snapshots.  The engine is driven
   by the flight-recorder cadence (soak's recorder thread) and read by
   HTTP handler threads, so every entry point takes the lock. *)

type op = Gt | Lt | Ge | Le | Eq | Ne

type cond =
  | Threshold of { metric : string; op : op; value : float }
  | Rate of { metric : string; op : op; value : float }
  | Absent of { metric : string }
  | Invariant_violation

type rule = { name : string; cond : cond; for_s : float }

type state = Inactive | Pending | Firing

type transition = { at_s : float; rule : string; to_firing : bool }

type rt = {
  rule : rule;
  gauge : Metric.gauge;
  mutable state : state;
  mutable since_s : float;  (* when the current state was entered *)
  mutable last_value : float option;  (* last observed value / rate *)
  mutable prev : float option;  (* previous raw value, for rate/absent *)
  mutable prev_t : float;
}

type t = {
  registry : Registry.t;
  sink : Sink.t;
  rts : rt list;
  mutable inv_baseline : float;
  mutable evals : int;
  trans : transition option array;  (* bounded ring, head = next slot *)
  mutable trans_head : int;
  mutable started : bool;
  lock : Mutex.t;
}

let violations_prefix = "vstamp_invariant_violations_total"

let op_to_string = function
  | Gt -> ">"
  | Lt -> "<"
  | Ge -> ">="
  | Le -> "<="
  | Eq -> "=="
  | Ne -> "!="

let op_of_string = function
  | ">" -> Some Gt
  | "<" -> Some Lt
  | ">=" -> Some Ge
  | "<=" -> Some Le
  | "==" | "=" -> Some Eq
  | "!=" -> Some Ne
  | _ -> None

let apply op a b =
  match op with
  | Gt -> a > b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Eq -> a = b
  | Ne -> a <> b

let state_to_string = function
  | Inactive -> "inactive"
  | Pending -> "pending"
  | Firing -> "firing"

(* {1 Parsing} *)

let duration_of_string s =
  let num, scale =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "ms" then
      (String.sub s 0 (String.length s - 2), 0.001)
    else if String.length s > 1 then
      match s.[String.length s - 1] with
      | 's' -> (String.sub s 0 (String.length s - 1), 1.)
      | 'm' -> (String.sub s 0 (String.length s - 1), 60.)
      | 'h' -> (String.sub s 0 (String.length s - 1), 3600.)
      | _ -> (s, 1.)
    else (s, 1.)
  in
  match float_of_string_opt num with
  | Some f when f >= 0. -> Ok (f *. scale)
  | _ -> Error (Printf.sprintf "bad duration %S (want e.g. 500ms, 5s, 2m, 1h)" s)

let pp_duration for_s =
  if Float.is_integer for_s then Printf.sprintf "%.0fs" for_s
  else Printf.sprintf "%gs" for_s

let fn_arg ~fn token =
  (* ["rate(metric)"] -> [Some "metric"] *)
  let prefix = fn ^ "(" in
  let lp = String.length prefix in
  if
    String.length token > lp + 1
    && String.sub token 0 lp = prefix
    && token.[String.length token - 1] = ')'
  then Some (String.sub token lp (String.length token - lp - 1))
  else None

let parse_rule line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let tokens =
    String.split_on_char '\t' line
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Ok None
  | name :: rest -> (
      let rest, for_s =
        match List.rev rest with
        | d :: "for" :: before -> (List.rev before, Some d)
        | _ -> (rest, None)
      in
      let for_s =
        match for_s with
        | None -> Ok 0.
        | Some d -> duration_of_string d
      in
      match for_s with
      | Error e -> Error e
      | Ok for_s -> (
          let cond =
            match rest with
            | [ "invariant_violation" ] -> Ok Invariant_violation
            | [ single ] -> (
                match fn_arg ~fn:"absent" single with
                | Some metric -> Ok (Absent { metric })
                | None ->
                    Error
                      (Printf.sprintf
                         "bad condition %S (want METRIC OP VALUE, \
                          rate(METRIC) OP VALUE, absent(METRIC) or \
                          invariant_violation)"
                         single))
            | [ subject; op_s; value_s ] -> (
                match (op_of_string op_s, float_of_string_opt value_s) with
                | None, _ -> Error (Printf.sprintf "bad operator %S" op_s)
                | _, None -> Error (Printf.sprintf "bad value %S" value_s)
                | Some op, Some value -> (
                    match fn_arg ~fn:"rate" subject with
                    | Some metric -> Ok (Rate { metric; op; value })
                    | None -> Ok (Threshold { metric = subject; op; value })))
            | [] -> Error "rule has a name but no condition"
            | _ -> Error "too many tokens in condition"
          in
          match cond with
          | Error e -> Error e
          | Ok cond -> Ok (Some { name; cond; for_s })))

let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc seen = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_rule line with
        | Error e -> Error (Printf.sprintf "line %d: %s" i e)
        | Ok None -> go (i + 1) acc seen rest
        | Ok (Some r) ->
            if List.mem r.name seen then
              Error (Printf.sprintf "line %d: duplicate rule name %S" i r.name)
            else go (i + 1) (r :: acc) (r.name :: seen) rest)
  in
  go 1 [] [] lines

let rule_to_string r =
  let cond =
    match r.cond with
    | Threshold { metric; op; value } ->
        Printf.sprintf "%s %s %g" metric (op_to_string op) value
    | Rate { metric; op; value } ->
        Printf.sprintf "rate(%s) %s %g" metric (op_to_string op) value
    | Absent { metric } -> Printf.sprintf "absent(%s)" metric
    | Invariant_violation -> "invariant_violation"
  in
  if r.for_s > 0. then
    Printf.sprintf "%s %s for %s" r.name cond (pp_duration r.for_s)
  else Printf.sprintf "%s %s" r.name cond

(* {1 Engine} *)

let metric_value registry name =
  match Registry.find registry name with
  | Some (Registry.Counter c) -> Some (float_of_int (Metric.count c))
  | Some (Registry.Gauge g) -> Some (Metric.value g)
  | Some (Registry.Histogram h) -> Some (float_of_int (Metric.observations h))
  | None -> None

let sum_violations registry =
  List.fold_left
    (fun acc (name, m) ->
      match m with
      | Registry.Counter c
        when String.length name >= String.length violations_prefix
             && String.sub name 0 (String.length violations_prefix)
                = violations_prefix ->
          acc +. float_of_int (Metric.count c)
      | _ -> acc)
    0. (Registry.snapshot registry)

let create ?(registry = Registry.default) ?(sink = Sink.null) rules =
  let rts =
    List.map
      (fun rule ->
        let gauge =
          Registry.gauge registry
            (Registry.with_labels "vstamp_alerts_firing" [ ("rule", rule.name) ])
        in
        Metric.set gauge 0.;
        {
          rule;
          gauge;
          state = Inactive;
          since_s = 0.;
          last_value = None;
          prev = None;
          prev_t = 0.;
        })
      rules
  in
  {
    registry;
    sink;
    rts;
    inv_baseline = sum_violations registry;
    evals = 0;
    trans = Array.make 256 None;
    trans_head = 0;
    started = false;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push_transition t tr =
  t.trans.(t.trans_head) <- Some tr;
  t.trans_head <- (t.trans_head + 1) mod Array.length t.trans

let emit_transition t rt ~now_s ~to_firing =
  push_transition t { at_s = now_s; rule = rt.rule.name; to_firing };
  let fields =
    [
      ("rule", Jsonx.String rt.rule.name);
      ("spec", Jsonx.String (rule_to_string rt.rule));
      ( "value",
        match rt.last_value with Some v -> Jsonx.Float v | None -> Jsonx.Null );
    ]
  in
  let ts = Event.Wall_ns (Int64.of_float (now_s *. 1e9)) in
  Sink.emit t.sink
    (Event.v ~ts (if to_firing then "alert.firing" else "alert.resolved") fields)

(* Evaluate one rule's raw condition, updating its rate/absence memory.
   Returns [(condition_holds, observed_value)]. *)
let eval_cond t rt ~now_s =
  match rt.rule.cond with
  | Threshold { metric; op; value } -> (
      match metric_value t.registry metric with
      | None -> (false, None)
      | Some v -> (apply op v value, Some v))
  | Rate { metric; op; value } -> (
      match metric_value t.registry metric with
      | None -> (false, None)
      | Some v ->
          let result =
            match rt.prev with
            | Some p when now_s > rt.prev_t ->
                let increase = if v < p then v else v -. p in
                let rate = increase /. (now_s -. rt.prev_t) in
                (apply op rate value, Some rate)
            | _ -> (false, None)
          in
          rt.prev <- Some v;
          rt.prev_t <- now_s;
          result)
  | Absent { metric } -> (
      match metric_value t.registry metric with
      | None -> (true, None)
      | Some v ->
          let stale = match rt.prev with Some p -> v <= p | None -> false in
          rt.prev <- Some v;
          rt.prev_t <- now_s;
          (stale, Some v))
  | Invariant_violation ->
      let v = sum_violations t.registry in
      (v > t.inv_baseline, Some (v -. t.inv_baseline))

let eval ?now_s t =
  let now_s = match now_s with Some s -> s | None -> Clock.now_s () in
  with_lock t (fun () ->
      t.evals <- t.evals + 1;
      if not t.started then begin
        t.started <- true;
        List.iter (fun rt -> rt.since_s <- now_s) t.rts
      end;
      List.iter
        (fun rt ->
          let holds, value = eval_cond t rt ~now_s in
          if value <> None then rt.last_value <- value;
          match (rt.state, holds) with
          | Inactive, true ->
              if rt.rule.for_s <= 0. then begin
                rt.state <- Firing;
                rt.since_s <- now_s;
                Metric.set rt.gauge 1.;
                emit_transition t rt ~now_s ~to_firing:true
              end
              else begin
                rt.state <- Pending;
                rt.since_s <- now_s
              end
          | Pending, true ->
              if now_s -. rt.since_s >= rt.rule.for_s then begin
                rt.state <- Firing;
                rt.since_s <- now_s;
                Metric.set rt.gauge 1.;
                emit_transition t rt ~now_s ~to_firing:true
              end
          | Pending, false ->
              rt.state <- Inactive;
              rt.since_s <- now_s
          | Firing, false ->
              rt.state <- Inactive;
              rt.since_s <- now_s;
              Metric.set rt.gauge 0.;
              emit_transition t rt ~now_s ~to_firing:false
          | Inactive, false | Firing, true -> ())
        t.rts)

let rules t = List.map (fun rt -> rt.rule) t.rts

let states t = with_lock t (fun () -> List.map (fun rt -> (rt.rule, rt.state)) t.rts)

let firing t =
  with_lock t (fun () ->
      List.filter_map
        (fun rt -> if rt.state = Firing then Some rt.rule else None)
        t.rts)

let any_firing t = firing t <> []

let transitions t =
  with_lock t (fun () ->
      let n = Array.length t.trans in
      let out = ref [] in
      for i = 0 to n - 1 do
        match t.trans.((t.trans_head + i) mod n) with
        | Some tr -> out := tr :: !out
        | None -> ()
      done;
      List.rev !out)

let evals t = with_lock t (fun () -> t.evals)

let to_json t =
  let trs = transitions t in
  with_lock t (fun () ->
      let rules_json =
        List.map
          (fun rt ->
            Jsonx.Obj
              [
                ("name", Jsonx.String rt.rule.name);
                ("rule", Jsonx.String (rule_to_string rt.rule));
                ("state", Jsonx.String (state_to_string rt.state));
                ("for_s", Jsonx.Float rt.rule.for_s);
                ("since_s", Jsonx.Float rt.since_s);
                ( "value",
                  match rt.last_value with
                  | Some v -> Jsonx.Float v
                  | None -> Jsonx.Null );
              ])
          t.rts
      in
      let firing_n =
        List.length (List.filter (fun rt -> rt.state = Firing) t.rts)
      in
      Jsonx.Obj
        [
          ("rules", Jsonx.List rules_json);
          ("firing", Jsonx.Int firing_n);
          ("evals", Jsonx.Int t.evals);
          ( "transitions",
            Jsonx.List
              (List.map
                 (fun tr ->
                   Jsonx.Obj
                     [
                       ("t_s", Jsonx.Float tr.at_s);
                       ("rule", Jsonx.String tr.rule);
                       ( "to",
                         Jsonx.String
                           (if tr.to_firing then "firing" else "resolved") );
                     ])
                 trs) );
        ])
