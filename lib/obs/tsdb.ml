(* Flight recorder: bounded multi-resolution time series over registry
   snapshots.  All storage is allocated when a series is first seen —
   fixed-size rings per tier — so memory is capped for the life of the
   store no matter how long the soak runs. *)

type kind = Counter | Gauge | Histogram

type point = {
  t_s : float;
  min : float;
  max : float;
  sum : float;
  count : int;
  last : float;
}

(* One resolution ring.  [head] is the next write slot; the retained
   points live at [(head - len + i) mod cap] for [i < len], oldest
   first.  The [agg_*] fields accumulate pushes bound for the next
   coarser tier. *)
type tier = {
  ts : float array;
  mins : float array;
  maxs : float array;
  sums : float array;
  lasts : float array;
  counts : int array;
  mutable len : int;
  mutable head : int;
  mutable agg_n : int;
  mutable agg_t : float;
  mutable agg_min : float;
  mutable agg_max : float;
  mutable agg_sum : float;
  mutable agg_count : int;
  mutable agg_last : float;
}

type series = {
  kind : kind;
  tiers : tier array;
  mutable prev : float;  (* last cumulative value seen (counter kinds) *)
  mutable has_prev : bool;
}

type t = {
  capacity : int;
  n_tiers : int;
  downsample : int;
  max_series : int;
  tbl : (string, series) Hashtbl.t;
  mutable samples : int;
  mutable dropped : int;
  lock : Mutex.t;
}

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | _ -> None

let make_tier cap =
  {
    ts = Array.make cap 0.;
    mins = Array.make cap 0.;
    maxs = Array.make cap 0.;
    sums = Array.make cap 0.;
    lasts = Array.make cap 0.;
    counts = Array.make cap 0;
    len = 0;
    head = 0;
    agg_n = 0;
    agg_t = 0.;
    agg_min = infinity;
    agg_max = neg_infinity;
    agg_sum = 0.;
    agg_count = 0;
    agg_last = 0.;
  }

let create ?(capacity = 240) ?(tiers = 3) ?(downsample = 12) ?(max_series = 512)
    () =
  if capacity <= 0 then invalid_arg "Tsdb.create: capacity must be positive";
  if tiers <= 0 then invalid_arg "Tsdb.create: tiers must be positive";
  if downsample <= 1 then invalid_arg "Tsdb.create: downsample must be > 1";
  if max_series <= 0 then invalid_arg "Tsdb.create: max_series must be positive";
  {
    capacity;
    n_tiers = tiers;
    downsample;
    max_series;
    tbl = Hashtbl.create 64;
    samples = 0;
    dropped = 0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Append a pre-aggregated point to one tier, without cascading. *)
let tier_put tier p =
  let cap = Array.length tier.ts in
  let i = tier.head in
  tier.ts.(i) <- p.t_s;
  tier.mins.(i) <- p.min;
  tier.maxs.(i) <- p.max;
  tier.sums.(i) <- p.sum;
  tier.lasts.(i) <- p.last;
  tier.counts.(i) <- p.count;
  tier.head <- (i + 1) mod cap;
  if tier.len < cap then tier.len <- tier.len + 1

let reset_agg tier =
  tier.agg_n <- 0;
  tier.agg_t <- 0.;
  tier.agg_min <- infinity;
  tier.agg_max <- neg_infinity;
  tier.agg_sum <- 0.;
  tier.agg_count <- 0;
  tier.agg_last <- 0.

(* Push a point into tier [i] and cascade [downsample]-point roll-ups
   into the coarser tiers. *)
let rec push t series i p =
  let tier = series.tiers.(i) in
  tier_put tier p;
  if i + 1 < t.n_tiers then begin
    tier.agg_n <- tier.agg_n + 1;
    tier.agg_t <- p.t_s;
    if p.min < tier.agg_min then tier.agg_min <- p.min;
    if p.max > tier.agg_max then tier.agg_max <- p.max;
    tier.agg_sum <- tier.agg_sum +. p.sum;
    tier.agg_count <- tier.agg_count + p.count;
    tier.agg_last <- p.last;
    if tier.agg_n >= t.downsample then begin
      let rolled =
        {
          t_s = tier.agg_t;
          min = tier.agg_min;
          max = tier.agg_max;
          sum = tier.agg_sum;
          count = tier.agg_count;
          last = tier.agg_last;
        }
      in
      reset_agg tier;
      push t series (i + 1) rolled
    end
  end

let get_series t ~kind name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> Some s
  | None ->
      if Hashtbl.length t.tbl >= t.max_series then begin
        t.dropped <- t.dropped + 1;
        None
      end
      else begin
        let s =
          {
            kind;
            tiers = Array.init t.n_tiers (fun _ -> make_tier t.capacity);
            prev = 0.;
            has_prev = false;
          }
        in
        Hashtbl.add t.tbl name s;
        Some s
      end

let observe_locked t ~now_s ~kind name v =
  match get_series t ~kind name with
  | None -> ()
  | Some s ->
      let recorded =
        match s.kind with
        | Gauge -> v
        | Counter | Histogram ->
            (* Store the increase since the previous cumulative value;
               a value going backwards is a reset, count the whole new
               value as increase (Prometheus rate() convention).  The
               first observation counts as an increase from zero,
               matching Registry.diff. *)
            let d =
              if not s.has_prev then v
              else if v < s.prev then v
              else v -. s.prev
            in
            s.prev <- v;
            s.has_prev <- true;
            d
      in
      push t s 0
        {
          t_s = now_s;
          min = recorded;
          max = recorded;
          sum = recorded;
          count = 1;
          last = recorded;
        }

let observe t ~now_s ~kind name v =
  with_lock t (fun () -> observe_locked t ~now_s ~kind name v)

let sample t ?now_s registry =
  let now_s = match now_s with Some s -> s | None -> Clock.now_s () in
  with_lock t (fun () ->
      t.samples <- t.samples + 1;
      List.iter
        (fun (name, m) ->
          match m with
          | Registry.Counter c ->
              observe_locked t ~now_s ~kind:Counter name
                (float_of_int (Metric.count c))
          | Registry.Gauge g ->
              observe_locked t ~now_s ~kind:Gauge name (Metric.value g)
          | Registry.Histogram h ->
              observe_locked t ~now_s ~kind:Histogram name
                (float_of_int (Metric.observations h)))
        (Registry.snapshot registry))

let names t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
      |> List.sort String.compare)

let series_kind t name =
  with_lock t (fun () ->
      Option.map (fun s -> s.kind) (Hashtbl.find_opt t.tbl name))

let samples_taken t = with_lock t (fun () -> t.samples)

let dropped_series t = with_lock t (fun () -> t.dropped)

let points_retained t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ s acc -> Array.fold_left (fun a tier -> a + tier.len) acc s.tiers)
        t.tbl 0)

let time_bounds t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ s acc ->
          Array.fold_left
            (fun acc tier ->
              if tier.len = 0 then acc
              else
                let cap = Array.length tier.ts in
                let oldest = tier.ts.((tier.head - tier.len + cap) mod cap) in
                let newest = tier.ts.((tier.head - 1 + cap) mod cap) in
                match acc with
                | None -> Some (oldest, newest)
                | Some (lo, hi) ->
                    Some (Stdlib.min lo oldest, Stdlib.max hi newest))
            acc s.tiers)
        t.tbl None)

let footprint_bytes t =
  with_lock t (fun () ->
      (* 5 float arrays + 1 int array of [capacity] slots per tier, 8
         bytes a word plus one header word per array, plus a small
         fixed per-series overhead.  An upper bound that does not move
         once the series set is stable. *)
      let per_tier = (6 * ((t.capacity * 8) + 8)) + 128 in
      let per_series = (t.n_tiers * per_tier) + 128 in
      Hashtbl.length t.tbl * per_series)

let tier_iter_chrono tier f =
  let cap = Array.length tier.ts in
  for i = 0 to tier.len - 1 do
    let j = (tier.head - tier.len + i + cap) mod cap in
    f
      {
        t_s = tier.ts.(j);
        min = tier.mins.(j);
        max = tier.maxs.(j);
        sum = tier.sums.(j);
        count = tier.counts.(j);
        last = tier.lasts.(j);
      }
  done

let tier_oldest tier =
  if tier.len = 0 then None
  else
    let cap = Array.length tier.ts in
    Some tier.ts.((tier.head - tier.len + cap) mod cap)

(* Finest tier that still reaches back to [from_s]; falls back to the
   coarsest non-empty tier when none does. *)
let pick_tier s from_s =
  let n = Array.length s.tiers in
  let rec go i best =
    if i >= n then best
    else
      match tier_oldest s.tiers.(i) with
      | None -> go (i + 1) best
      | Some oldest ->
          if oldest <= from_s then Some s.tiers.(i) else go (i + 1) (Some s.tiers.(i))
  in
  (* prefer fine tiers: scan from 0 and stop at the first that covers *)
  let rec first_covering i =
    if i >= n then None
    else
      match tier_oldest s.tiers.(i) with
      | Some oldest when oldest <= from_s -> Some s.tiers.(i)
      | _ -> first_covering (i + 1)
  in
  match first_covering 0 with Some tier -> Some tier | None -> go 0 None

let query t ~metric ~from_s ~to_s ~step_s =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl metric with
      | None -> []
      | Some s -> (
          match pick_tier s from_s with
          | None -> []
          | Some tier ->
              let span = to_s -. from_s in
              if span <= 0. then []
              else
                let step = if step_s > 0. then step_s else span in
                let n_buckets =
                  Stdlib.min 100_000 (int_of_float (ceil (span /. step)))
                in
                if n_buckets <= 0 then []
                else begin
                  let acc = Array.make n_buckets None in
                  tier_iter_chrono tier (fun p ->
                      if p.t_s >= from_s && p.t_s < to_s then begin
                        let i =
                          Stdlib.min (n_buckets - 1)
                            (int_of_float ((p.t_s -. from_s) /. step))
                        in
                        let merged =
                          match acc.(i) with
                          | None -> p
                          | Some q ->
                              {
                                t_s = Stdlib.max p.t_s q.t_s;
                                min = Stdlib.min p.min q.min;
                                max = Stdlib.max p.max q.max;
                                sum = p.sum +. q.sum;
                                count = p.count + q.count;
                                last = (if p.t_s >= q.t_s then p.last else q.last);
                              }
                        in
                        acc.(i) <- Some merged
                      end);
                  Array.to_list acc |> List.filter_map Fun.id
                end))

let point_json p =
  Jsonx.Obj
    [
      ("t", Jsonx.Float p.t_s);
      ("min", Jsonx.Float p.min);
      ("max", Jsonx.Float p.max);
      ("avg", Jsonx.Float (if p.count = 0 then 0. else p.sum /. float_of_int p.count));
      ("last", Jsonx.Float p.last);
      ("count", Jsonx.Int p.count);
    ]

let range_json t ~metric ~from_s ~to_s ~step_s =
  let kind = series_kind t metric in
  let points = query t ~metric ~from_s ~to_s ~step_s in
  Jsonx.Obj
    [
      ("metric", Jsonx.String metric);
      ( "kind",
        match kind with
        | Some k -> Jsonx.String (kind_to_string k)
        | None -> Jsonx.Null );
      ("from_s", Jsonx.Float from_s);
      ("to_s", Jsonx.Float to_s);
      ("step_s", Jsonx.Float step_s);
      ("points", Jsonx.List (List.map point_json points));
    ]

let index_json t =
  let metric_names = names t in
  Jsonx.Obj
    [
      ("metrics", Jsonx.List (List.map (fun n -> Jsonx.String n) metric_names));
      ("series", Jsonx.Int (List.length metric_names));
      ("samples", Jsonx.Int (samples_taken t));
      ("points", Jsonx.Int (points_retained t));
      ("footprint_bytes", Jsonx.Int (footprint_bytes t));
      ("dropped_series", Jsonx.Int (dropped_series t));
    ]

let schema = "vstamp-tsdb/1"

let to_json ?alerts t =
  with_lock t (fun () ->
      let series_json =
        Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, s) ->
               let tiers_json =
                 Array.to_list s.tiers
                 |> List.map (fun tier ->
                        let pts = ref [] in
                        tier_iter_chrono tier (fun p ->
                            pts :=
                              Jsonx.List
                                [
                                  Jsonx.Float p.t_s;
                                  Jsonx.Float p.min;
                                  Jsonx.Float p.max;
                                  Jsonx.Float p.sum;
                                  Jsonx.Int p.count;
                                  Jsonx.Float p.last;
                                ]
                              :: !pts);
                        Jsonx.List (List.rev !pts))
               in
               ( name,
                 Jsonx.Obj
                   [
                     ("kind", Jsonx.String (kind_to_string s.kind));
                     ("tiers", Jsonx.List tiers_json);
                   ] ))
      in
      let base =
        [
          ("schema", Jsonx.String schema);
          ("capacity", Jsonx.Int t.capacity);
          ("tiers", Jsonx.Int t.n_tiers);
          ("downsample", Jsonx.Int t.downsample);
          ("samples", Jsonx.Int t.samples);
          ("series", Jsonx.Obj series_json);
        ]
      in
      let base =
        match alerts with Some a -> base @ [ ("alerts", a) ] | None -> base
      in
      Jsonx.Obj base)

let of_json json =
  let ( let* ) = Result.bind in
  let int_field name =
    match Jsonx.member name json with
    | Some v -> (
        match Jsonx.to_int v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "tsdb dump: %s is not an int" name))
    | None -> Error (Printf.sprintf "tsdb dump: missing %s" name)
  in
  let* () =
    match Jsonx.member "schema" json with
    | Some (Jsonx.String s) when s = schema -> Ok ()
    | Some (Jsonx.String s) ->
        Error (Printf.sprintf "tsdb dump: unsupported schema %S" s)
    | _ -> Error "tsdb dump: missing schema"
  in
  let* capacity = int_field "capacity" in
  let* tiers = int_field "tiers" in
  let* downsample = int_field "downsample" in
  let* samples = int_field "samples" in
  let* series =
    match Jsonx.member "series" json with
    | Some (Jsonx.Obj fields) -> Ok fields
    | _ -> Error "tsdb dump: missing series object"
  in
  let t =
    try Ok (create ~capacity ~tiers ~downsample ())
    with Invalid_argument m -> Error ("tsdb dump: " ^ m)
  in
  let* t = t in
  t.samples <- samples;
  let parse_point = function
    | Jsonx.List [ tj; minj; maxj; sumj; countj; lastj ] -> (
        match
          ( Jsonx.to_float tj,
            Jsonx.to_float minj,
            Jsonx.to_float maxj,
            Jsonx.to_float sumj,
            Jsonx.to_int countj,
            Jsonx.to_float lastj )
        with
        | Some t_s, Some min, Some max, Some sum, Some count, Some last ->
            Ok { t_s; min; max; sum; count; last }
        | _ -> Error "tsdb dump: malformed point")
    | _ -> Error "tsdb dump: malformed point"
  in
  let* () =
    List.fold_left
      (fun acc (name, sj) ->
        let* () = acc in
        let* kind =
          match Jsonx.member "kind" sj with
          | Some (Jsonx.String k) -> (
              match kind_of_string k with
              | Some k -> Ok k
              | None -> Error (Printf.sprintf "tsdb dump: bad kind %S" k))
          | _ -> Error "tsdb dump: series missing kind"
        in
        let* tier_lists =
          match Jsonx.member "tiers" sj with
          | Some (Jsonx.List ls) -> Ok ls
          | _ -> Error "tsdb dump: series missing tiers"
        in
        match get_series t ~kind name with
        | None -> Ok ()
        | Some s ->
            List.fold_left
              (fun acc (i, tier_json) ->
                let* () = acc in
                if i >= Array.length s.tiers then Ok ()
                else
                  match tier_json with
                  | Jsonx.List pts ->
                      List.fold_left
                        (fun acc pj ->
                          let* () = acc in
                          let* p = parse_point pj in
                          tier_put s.tiers.(i) p;
                          Ok ())
                        (Ok ()) pts
                  | _ -> Error "tsdb dump: tier is not a list")
              (Ok ())
              (List.mapi (fun i tj -> (i, tj)) tier_lists))
      (Ok ()) series
  in
  Ok (t, Jsonx.member "alerts" json)
