(* --- counters --- *)

type counter = { mutable c : int }

let counter () = { c = 0 }

let inc x = x.c <- x.c + 1

let add x n =
  if n < 0 then invalid_arg "Metric.add: counters are monotone";
  x.c <- x.c + n

let count x = x.c

let reset_counter x = x.c <- 0

(* --- gauges --- *)

type gauge = { mutable g : float }

let gauge () = { g = 0.0 }

let set x v = x.g <- v

let add_gauge x v = x.g <- x.g +. v

let value x = x.g

let reset_gauge x = x.g <- 0.0

(* --- histograms --- *)

(* Bucket 0 holds observations below 1; bucket i >= 1 holds
   [2^((i-1)/8), 2^(i/8)), i.e. 8 buckets per octave up to 2^63. *)

let sub_buckets = 8

let n_buckets = 1 + (sub_buckets * 63)

type histogram = {
  mutable n : int;
  mutable s : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

let histogram () =
  { n = 0; s = 0.0; lo = infinity; hi = neg_infinity; buckets = Array.make n_buckets 0 }

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (Float.of_int sub_buckets *. Float.log2 v) in
    if i >= n_buckets then n_buckets - 1 else i

let observe h v =
  h.n <- h.n + 1;
  h.s <- h.s +. v;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v;
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1

let observe_int h v = observe h (float_of_int v)

let observations h = h.n

let sum h = h.s

let mean h = if h.n = 0 then 0.0 else h.s /. float_of_int h.n

let min_value h = if h.n = 0 then 0.0 else h.lo

let max_value h = if h.n = 0 then 0.0 else h.hi

(* geometric midpoint of bucket [i]'s bounds *)
let representative i =
  if i = 0 then 0.5
  else Float.pow 2.0 ((float_of_int i -. 0.5) /. float_of_int sub_buckets)

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.n))) in
    let rank = min h.n rank in
    let acc = ref 0 and found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min h.hi (Float.max h.lo (representative !found))
  end

type percentiles = { p50 : float; p95 : float; p99 : float; max : float }

let percentiles h =
  {
    p50 = quantile h 0.50;
    p95 = quantile h 0.95;
    p99 = quantile h 0.99;
    max = max_value h;
  }

let reset_histogram h =
  h.n <- 0;
  h.s <- 0.0;
  h.lo <- infinity;
  h.hi <- neg_infinity;
  Array.fill h.buckets 0 n_buckets 0
