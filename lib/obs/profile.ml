type cell = {
  mutable count : int;
  mutable total_ns : int64;
  mutable total_alloc_bytes : float;
}

type t = (string list, cell) Hashtbl.t

let create () : t = Hashtbl.create 64

let record t ~stack ~ns ~alloc_bytes =
  if stack = [] then invalid_arg "Profile.record: empty stack";
  let cell =
    match Hashtbl.find_opt t stack with
    | Some c -> c
    | None ->
        let c = { count = 0; total_ns = 0L; total_alloc_bytes = 0.0 } in
        Hashtbl.add t stack c;
        c
  in
  cell.count <- cell.count + 1;
  cell.total_ns <- Int64.add cell.total_ns ns;
  cell.total_alloc_bytes <- cell.total_alloc_bytes +. alloc_bytes

let time t stack f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Clock.now_ns () in
  let finally () =
    record t ~stack
      ~ns:(Int64.sub (Clock.now_ns ()) t0)
      ~alloc_bytes:(Gc.allocated_bytes () -. a0)
  in
  Fun.protect ~finally f

type row = {
  stack : string list;
  count : int;
  total_ns : int64;
  total_alloc_bytes : float;
}

let rows (t : t) =
  Hashtbl.fold
    (fun stack (c : cell) acc ->
      {
        stack;
        count = c.count;
        total_ns = c.total_ns;
        total_alloc_bytes = c.total_alloc_bytes;
      }
      :: acc)
    t []
  |> List.sort (fun a b -> compare a.stack b.stack)

let total_ns (t : t) =
  Hashtbl.fold (fun _ (c : cell) acc -> Int64.add acc c.total_ns) t 0L

let top ?(by = `Ns) ~n t =
  let key r =
    match by with
    | `Ns -> Int64.to_float r.total_ns
    | `Alloc -> r.total_alloc_bytes
    | `Count -> float_of_int r.count
  in
  (* heaviest first; stack order breaks ties so the listing stays
     deterministic *)
  let sorted =
    List.sort
      (fun a b ->
        match compare (key b) (key a) with
        | 0 -> compare a.stack b.stack
        | c -> c)
      (rows t)
  in
  List.filteri (fun i _ -> i < n) sorted

let sanitize_frame frame =
  String.map (function ';' | ' ' | '\n' | '\t' -> '_' | c -> c) frame

let to_folded ?(weight = `Ns) t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      let w =
        match weight with
        | `Ns -> Int64.to_string r.total_ns
        | `Alloc -> Printf.sprintf "%.0f" r.total_alloc_bytes
      in
      Buffer.add_string buf
        (String.concat ";" (List.map sanitize_frame r.stack));
      Buffer.add_char buf ' ';
      Buffer.add_string buf w;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let pp_top ?by ?(n = 10) ppf t =
  let rs = top ?by ~n t in
  let name r = String.concat ";" r.stack in
  let width =
    List.fold_left (fun w r -> max w (String.length (name r))) 5 rs
  in
  Format.fprintf ppf "%-*s %10s %12s %12s %12s@." width "stack" "calls"
    "total ms" "ns/call" "alloc MiB";
  List.iter
    (fun r ->
      let ns = Int64.to_float r.total_ns in
      Format.fprintf ppf "%-*s %10d %12.3f %12.0f %12.3f@." width (name r)
        r.count (ns /. 1e6)
        (ns /. float_of_int (max 1 r.count))
        (r.total_alloc_bytes /. (1024.0 *. 1024.0)))
    rs

let to_json t =
  Jsonx.List
    (List.map
       (fun r ->
         Jsonx.Obj
           [
             ("stack", Jsonx.List (List.map (fun f -> Jsonx.String f) r.stack));
             ("count", Jsonx.Int r.count);
             ("total_ns", Jsonx.Int (Int64.to_int r.total_ns));
             ("alloc_bytes", Jsonx.Float r.total_alloc_bytes);
           ])
       (rows t))

let reset = Hashtbl.reset
