(** Identity-space observatory: a fragment inventory over a replica
    population.

    A version stamp's id is a set of {e fragments} of the binary
    identity space — each fragment a path of ['0']/['1'] digits naming
    a dyadic subinterval ([""] is the whole space).  The paper's
    invariant I2 says the live replicas' fragments always {e tile} the
    space exactly: every point is covered ({e no leak}) by exactly one
    fragment ({e no overlap}).  This module audits that
    partition-of-unity property with positional witnesses, computes
    fragmentation analytics (width/depth distributions, fragmentation
    entropy, reduce-effectiveness against an oracle minimum), and
    keeps a genealogy DAG of fork/join/retire lineage with DOT and
    JSON export.

    Like the rest of [vstamp.obs] the module is core-free: fragments
    arrive as plain [string list]s of binary paths, so any backend (or
    a test generator) can feed it. *)

type fragment = string list
(** The id of one replica: binary digit strings, [""] meaning the
    whole space.  An empty list is a replica owning nothing (always a
    leak). *)

(** {1 Partition-of-unity audit} *)

type violation =
  | Overlap of { a : string; a_frag : string; b : string; b_frag : string }
      (** Owners [a] and [b] both cover the point region under the
          shorter of [a_frag]/[b_frag] (one is a prefix of the other,
          or they are equal). *)
  | Leak of { path : string }
      (** No live fragment covers the subtree at [path]. *)
  | Malformed of { owner : string; frag : string }
      (** [frag] contains a character other than ['0']/['1']. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_json : violation -> Jsonx.t

type audit = {
  audited : int;  (** replicas examined *)
  audit_fragments : int;  (** fragment strings examined *)
  violations : violation list;  (** empty iff the fragments tile exactly *)
}

val audit_fragments : (string * fragment) list -> audit
(** Audit an arbitrary [(owner, fragment)] inventory.  Violations are
    reported in deterministic depth-first (0-before-1) order of the
    witness position; at most one witness per trie position. *)

(** {1 Fragmentation analytics} *)

type stats = {
  live : int;  (** live replicas *)
  fragments : int;  (** total fragment strings across live replicas *)
  id_bits : int;  (** total digits across live fragments *)
  oracle_bits : int;
      (** minimal total digits any exact tiling with [live] leaves can
          achieve (minimal external path length of a binary tree) *)
  max_depth : int;  (** longest live fragment *)
  max_width : int;  (** most fragments held by one replica *)
  mean_width : float;  (** [fragments / live] ([0.] when empty) *)
  entropy : float;
      (** fragmentation entropy: expected digits needed to address the
          owner of a uniformly random point, [sum 2^-d * d] over live
          fragment depths [d] *)
  oracle_entropy : float;  (** the same expectation for the oracle tiling *)
  reduce_effectiveness : float;
      (** [oracle_bits / id_bits] — 1.0 means joins/reduce reclaimed
          every reclaimable digit; [1.] when [id_bits = 0] *)
  width_dist : (int * int) list;  (** fragments-per-replica -> replicas *)
  depth_dist : (int * int) list;  (** fragment depth -> fragments *)
}

val oracle_bits : int -> int
(** [oracle_bits n] is the minimal external path length of a binary
    tree with [n] leaves: the fewest total id digits an adversary-free
    tiling of [n] replicas can use.  [0] for [n <= 1]. *)

val oracle_entropy : int -> float

val stats_of_fragments : (string * fragment) list -> stats

val stats_json : stats -> Jsonx.t

(** {1 Genealogy inventory}

    A mutable inventory tracking the live population and its lineage.
    Nodes are replica incarnations; [fork] consumes one node and
    yields two, [join]/[retire] consume two and yield one, [refresh]
    updates a live node's fragment in place (the join-then-fork of an
    ordinary sync, which changes ids without changing the population).
    All operations are O(1) amortised except audits/stats, which walk
    the live set. *)

type t

type node_id = int

type via = Seed | Fork | Join | Retire

type node = {
  id : node_id;
  label : string;
  via : via;
  parents : node_id list;  (** for [Retire], survivor first, retiree second *)
  born : int;  (** event sequence number *)
  mutable frag : fragment;
  mutable died : int option;  (** event seq at which the node was consumed *)
  mutable refreshes : int;
}

val create : unit -> t

val seed : ?label:string -> t -> fragment -> node_id
(** Add a live root (label defaults to ["n<id>"]). *)

val fork :
  ?labels:string * string ->
  t ->
  node_id ->
  left:fragment ->
  right:fragment ->
  node_id * node_id
(** Consume a live node, yield two live children.  Digits added
    ([bits left + bits right - bits parent], when positive) accumulate
    in {!fork_bits}.  @raise Invalid_argument if the parent is not
    live. *)

val join : ?label:string -> ?via:via -> t -> node_id -> node_id -> fragment -> node_id
(** Consume two live nodes, yield one live child holding [fragment].
    [via] defaults to [Join]; pass [Retire] when the second parent is
    being retired into the first.  Digits reclaimed
    ([bits a + bits b - bits child], when positive) accumulate in
    {!reclaimed_bits}.  @raise Invalid_argument unless both parents
    are live and distinct. *)

val retire : ?label:string -> t -> survivor:node_id -> node_id -> fragment -> node_id
(** [join ~via:Retire] with the argument order made explicit. *)

val refresh : t -> node_id -> fragment -> unit
(** Replace a live node's fragment in place (no genealogy node).
    Digits dropped accumulate in {!reclaimed_bits}.  Also the fault
    -injection hook: refreshing with an overlapping or leaky fragment
    corrupts the inventory so the audit's witnesses can be exercised.
    @raise Invalid_argument if the node is not live. *)

val find : t -> node_id -> node option

val live : t -> node_id list
(** Live node ids in increasing id order. *)

val live_count : t -> int

val node_count : t -> int
(** All incarnations ever recorded. *)

val audit : t -> audit
(** {!audit_fragments} over the live population. *)

val stats : t -> stats

val seeds : t -> int

val forks : t -> int

val joins : t -> int
(** [Join]-via joins only; retirements count in {!retires}. *)

val retires : t -> int

val refreshes : t -> int

val reclaimed_bits : t -> int
(** Cumulative id digits reclaimed by joins, retires and refreshes. *)

val fork_bits : t -> int
(** Cumulative id digits added by forks. *)

(** {1 Export} *)

val to_dot : t -> string
(** Graphviz digraph of the genealogy: live nodes bold, consumed nodes
    grey, retire edges dashed. *)

val to_json : t -> Jsonx.t
(** Full export (schema ["vstamp-idspace/1"]): every node with lineage
    and fragment, plus {!stats_json} and the current audit. *)

(** {1 Metrics} *)

val publish : ?registry:Registry.t -> t -> unit
(** Set the [vstamp_idspace_*] gauges (live_replicas, fragments,
    id_bits, oracle_bits, entropy, oracle_entropy, max_depth,
    mean_width, reduce_effectiveness, audit_violations,
    genealogy_nodes) and advance the [vstamp_idspace_ops_total{op=..}],
    [vstamp_idspace_reclaimed_bits_total] and
    [vstamp_idspace_fork_bits_total] counters by their growth since
    the previous [publish] (counters are shared across runs, so only
    deltas are added). *)

val view_json : Registry.t -> Jsonx.t
(** The [GET /idspace.json] payload: the [vstamp_idspace_*] families
    assembled from a registry snapshot (the same registry-derived
    pattern as [Convergence.lag_json]). *)
