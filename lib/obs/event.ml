type timestamp = Step of int | Wall_ns of int64 | Untimed

type t = { ts : timestamp; name : string; fields : (string * Jsonx.t) list }

let v ?(ts = Untimed) name fields = { ts; name; fields }

let equal a b =
  a.ts = b.ts && String.equal a.name b.name
  && List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Jsonx.equal v1 v2)
       a.fields b.fields

let reserved = [ "event"; "step"; "wall_ns" ]

let to_json e =
  List.iter
    (fun (k, _) ->
      if List.mem k reserved then
        invalid_arg (Printf.sprintf "Event.to_json: reserved field %S" k))
    e.fields;
  let ts_fields =
    match e.ts with
    | Step k -> [ ("step", Jsonx.Int k) ]
    | Wall_ns ns -> [ ("wall_ns", Jsonx.Int (Int64.to_int ns)) ]
    | Untimed -> []
  in
  Jsonx.Obj ((("event", Jsonx.String e.name) :: ts_fields) @ e.fields)

let of_json json =
  match json with
  | Jsonx.Obj bindings -> (
      match Jsonx.member "event" json with
      | Some (Jsonx.String name) ->
          let ts =
            match (Jsonx.member "step" json, Jsonx.member "wall_ns" json) with
            | Some (Jsonx.Int k), _ -> Step k
            | _, Some (Jsonx.Int ns) -> Wall_ns (Int64.of_int ns)
            | _ -> Untimed
          in
          let fields =
            List.filter (fun (k, _) -> not (List.mem k reserved)) bindings
          in
          Ok { ts; name; fields }
      | Some _ -> Error "field \"event\" is not a string"
      | None -> Error "missing field \"event\"")
  | _ -> Error "event is not a JSON object"

let to_string e = Jsonx.to_string (to_json e)

let of_string s =
  match Jsonx.of_string s with
  | Error e -> Error e
  | Ok json -> of_json json
