(** Fixed-memory ring-buffer time-series store — the flight recorder.

    A [Tsdb.t] is fed by periodic {!Registry} snapshots ({!sample}) and
    retains a bounded, multi-resolution history per metric: tier 0
    keeps the last [capacity] raw samples; each coarser tier keeps
    [capacity] roll-ups of [downsample] points from the tier below
    (min/max/sum/count/last per window).  Memory is therefore capped at
    allocation time — an hours-long soak fits in a few MB no matter how
    long it runs, old detail degrading gracefully into coarser windows
    instead of disappearing.

    Counters (and histogram observation counts) are recorded as the
    {e increase} since the previous sample — the natural shape for
    sparklines and rate math — with resets handled per the Prometheus
    [rate()] convention.  Gauges are recorded raw. *)

type t

type kind = Counter | Gauge | Histogram

type point = {
  t_s : float;  (** wall-clock seconds of the (latest) sample folded in *)
  min : float;
  max : float;
  sum : float;
  count : int;
  last : float;
}

val create : ?capacity:int -> ?tiers:int -> ?downsample:int -> ?max_series:int -> unit -> t
(** [capacity] points per tier per series (default 240), [tiers]
    resolutions (default 3), [downsample] fan-in between tiers
    (default 12), [max_series] distinct metric names retained (default
    512; further names are counted in {!dropped_series} and ignored).
    At a 1 s sample cadence the defaults retain 4 min of raw samples,
    48 min at 12 s resolution and ~9.6 h at 144 s resolution.
    @raise Invalid_argument on non-positive parameters. *)

val sample : t -> ?now_s:float -> Registry.t -> unit
(** Record one snapshot of every metric in the registry.  [now_s]
    defaults to {!Clock.now_s}. *)

val observe : t -> now_s:float -> kind:kind -> string -> float -> unit
(** Feed a single named value directly (what {!sample} does per
    metric).  Counter-kind values are cumulative; the stored point is
    the increase since the previous observation. *)

val names : t -> string list
(** Metric names with recorded history, sorted. *)

val series_kind : t -> string -> kind option

val samples_taken : t -> int

val dropped_series : t -> int

val footprint_bytes : t -> int
(** Upper bound on heap bytes held by ring storage — constant after
    all series are registered, regardless of how many samples land. *)

val points_retained : t -> int
(** Total points currently stored across all series and tiers;
    bounded by [series * tiers * capacity]. *)

val time_bounds : t -> (float * float) option
(** Earliest and latest sample timestamps retained across all series;
    [None] while empty. *)

val query :
  t -> metric:string -> from_s:float -> to_s:float -> step_s:float -> point list
(** Roll the retained history of [metric] into [step_s]-wide buckets
    covering [[from_s, to_s)], reading from the finest tier that still
    reaches back to [from_s].  Empty buckets are omitted.  Unknown
    metrics yield [[]]. *)

val range_json :
  t -> metric:string -> from_s:float -> to_s:float -> step_s:float -> Jsonx.t
(** The [/range.json] payload: metric, kind, window, step and the
    bucket list of {!query}. *)

val index_json : t -> Jsonx.t
(** The [/range.json] payload when no [metric] is given: the metric
    -name index plus store statistics. *)

val to_json : ?alerts:Jsonx.t -> t -> Jsonx.t
(** Dump the full retained history (schema [vstamp-tsdb/1]), optionally
    embedding an alert-engine state block — the input format of
    [vstamp report --dump]. *)

val of_json : Jsonx.t -> (t * Jsonx.t option, string) result
(** Inverse of {!to_json}; returns the store and the embedded alerts
    block, if any. *)
