type kind = Seed | Update | Fork_left | Fork_right | Join

let kind_to_string = function
  | Seed -> "seed"
  | Update -> "update"
  | Fork_left -> "fork.l"
  | Fork_right -> "fork.r"
  | Join -> "join"

let kind_of_string = function
  | "seed" -> Some Seed
  | "update" -> Some Update
  | "fork.l" -> Some Fork_left
  | "fork.r" -> Some Fork_right
  | "join" -> Some Join
  | _ -> None

let arity = function
  | Seed -> 0
  | Update | Fork_left | Fork_right -> 1
  | Join -> 2

type node = {
  id : int;
  step : int;
  kind : kind;
  parents : int list;
  replica : int;
  label : string;
}

type t = { mutable rev_nodes : node list; mutable next : int }

let create () = { rev_nodes = []; next = 0 }

let length t = t.next

let add t ~step ~kind ~parents ~replica ~label =
  if step < 0 then invalid_arg "Causal_trace.add: negative step";
  if replica < 0 then invalid_arg "Causal_trace.add: negative replica";
  if List.length parents <> arity kind then
    invalid_arg
      (Printf.sprintf "Causal_trace.add: %s node needs %d parent(s)"
         (kind_to_string kind) (arity kind));
  List.iter
    (fun p ->
      if p < 0 || p >= t.next then
        invalid_arg (Printf.sprintf "Causal_trace.add: unknown parent %d" p))
    parents;
  let id = t.next in
  t.rev_nodes <- { id; step; kind; parents; replica; label } :: t.rev_nodes;
  t.next <- id + 1;
  id

let nodes t = List.rev t.rev_nodes

let node t id =
  if id < 0 || id >= t.next then None
  else Some (List.nth t.rev_nodes (t.next - 1 - id))

let node_exn t id =
  match node t id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Causal_trace: unknown node %d" id)

let node_equal a b =
  a.id = b.id && a.step = b.step && a.kind = b.kind && a.parents = b.parents
  && a.replica = b.replica
  && String.equal a.label b.label

let equal a b =
  a.next = b.next && List.for_all2 node_equal (nodes a) (nodes b)

(* --- DAG queries --- *)

let ancestors t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Causal_trace.ancestors: unknown node %d" id);
  let arr = Array.of_list (nodes t) in
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter visit arr.(id).parents
    end
  in
  visit id;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let latest_common_ancestor t a b =
  let in_a = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.add in_a id ()) (ancestors t a);
  List.fold_left
    (fun best id -> if Hashtbl.mem in_a id then Some id else best)
    None (ancestors t b)

let find_by_label t label =
  let rec go = function
    | [] -> None
    | n :: rest -> if String.equal n.label label then Some n.id else go rest
  in
  go t.rev_nodes

(* --- JSONL form --- *)

let node_to_event n =
  Event.v ~ts:(Event.Step n.step) "trace.node"
    [
      ("id", Jsonx.Int n.id);
      ("kind", Jsonx.String (kind_to_string n.kind));
      ("replica", Jsonx.Int n.replica);
      ("parents", Jsonx.List (List.map (fun p -> Jsonx.Int p) n.parents));
      ("label", Jsonx.String n.label);
    ]

let to_events t =
  Event.v "trace.meta"
    [ ("format", Jsonx.String "vstamp-causal-trace/1"); ("nodes", Jsonx.Int t.next) ]
  :: List.map node_to_event (nodes t)

let node_of_event e =
  let field name = Jsonx.member name (Jsonx.Obj e.Event.fields) in
  let int_field name =
    match Option.bind (field name) Jsonx.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace.node: missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* id = int_field "id" in
  let* replica = int_field "replica" in
  let* kind =
    match Option.bind (field "kind") Jsonx.to_str with
    | Some s -> (
        match kind_of_string s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "trace.node %d: unknown kind %S" id s))
    | None -> Error (Printf.sprintf "trace.node %d: missing kind" id)
  in
  let* parents =
    match field "parents" with
    | Some (Jsonx.List ps) ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match Jsonx.to_int p with
            | Some p -> Ok (acc @ [ p ])
            | None -> Error (Printf.sprintf "trace.node %d: bad parent" id))
          (Ok []) ps
    | _ -> Error (Printf.sprintf "trace.node %d: missing parents" id)
  in
  let* label =
    match Option.bind (field "label") Jsonx.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "trace.node %d: missing label" id)
  in
  let* step =
    match e.Event.ts with
    | Event.Step k -> Ok k
    | _ -> Error (Printf.sprintf "trace.node %d: missing step timestamp" id)
  in
  Ok (id, step, kind, parents, replica, label)

let of_events events =
  let events =
    match events with
    | e :: rest when String.equal e.Event.name "trace.meta" -> rest
    | es -> es
  in
  let t = create () in
  let rec go = function
    | [] -> Ok t
    | e :: rest ->
        if not (String.equal e.Event.name "trace.node") then
          Error (Printf.sprintf "unexpected event %S in trace" e.Event.name)
        else (
          match node_of_event e with
          | Error _ as err -> err
          | Ok (id, step, kind, parents, replica, label) ->
              if id <> t.next then
                Error
                  (Printf.sprintf "trace.node id %d out of order (expected %d)"
                     id t.next)
              else (
                match add t ~step ~kind ~parents ~replica ~label with
                | _ -> go rest
                | exception Invalid_argument m -> Error m))
  in
  go events

let to_jsonl t =
  String.concat ""
    (List.map (fun e -> Event.to_string e ^ "\n") (to_events t))

let of_jsonl input =
  let lines =
    String.split_on_char '\n' input
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match Event.of_string l with
        | Ok e -> parse (e :: acc) rest
        | Error m -> Error (Printf.sprintf "bad trace line: %s" m))
  in
  Result.bind (parse [] lines) of_events

(* --- Graphviz DOT --- *)

(* Inside a double-quoted DOT string only '"' and '\\' are significant;
   newlines are folded to the DOT escape so one label is one line. *)
let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> ()
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot_shape = function
  | Seed -> "doublecircle"
  | Update -> "ellipse"
  | Fork_left | Fork_right -> "box"
  | Join -> "diamond"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph causal_trace {\n";
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf "  node [fontname=\"monospace\"];\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"#%d %s @%d\\n%s\" shape=%s];\n" n.id
           n.id
           (dot_escape (kind_to_string n.kind))
           n.step (dot_escape n.label) (dot_shape n.kind)))
    (nodes t);
  List.iter
    (fun n ->
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p n.id))
        n.parents)
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- Chrome trace-event JSON --- *)

let to_chrome t =
  let slice n =
    Jsonx.Obj
      [
        ("name", Jsonx.String (kind_to_string n.kind));
        ("cat", Jsonx.String "replica");
        ("ph", Jsonx.String "X");
        ("ts", Jsonx.Int n.step);
        ("dur", Jsonx.Int 1);
        ("pid", Jsonx.Int 0);
        ("tid", Jsonx.Int n.replica);
        ( "args",
          Jsonx.Obj
            [
              ("node", Jsonx.Int n.id);
              ("label", Jsonx.String n.label);
              ( "parents",
                Jsonx.List (List.map (fun p -> Jsonx.Int p) n.parents) );
            ] );
      ]
  in
  let flow_events =
    List.concat_map
      (fun n ->
        List.mapi
          (fun k p ->
            let parent = node_exn t p in
            let flow_id = (n.id * 4) + k in
            [
              Jsonx.Obj
                [
                  ("name", Jsonx.String "causal");
                  ("cat", Jsonx.String "causal");
                  ("ph", Jsonx.String "s");
                  ("id", Jsonx.Int flow_id);
                  ("ts", Jsonx.Int parent.step);
                  ("pid", Jsonx.Int 0);
                  ("tid", Jsonx.Int parent.replica);
                ];
              Jsonx.Obj
                [
                  ("name", Jsonx.String "causal");
                  ("cat", Jsonx.String "causal");
                  ("ph", Jsonx.String "f");
                  ("bp", Jsonx.String "e");
                  ("id", Jsonx.Int flow_id);
                  ("ts", Jsonx.Int n.step);
                  ("pid", Jsonx.Int 0);
                  ("tid", Jsonx.Int n.replica);
                ];
            ])
          n.parents
        |> List.concat)
      (nodes t)
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map slice (nodes t) @ flow_events));
      ("displayTimeUnit", Jsonx.String "ms");
    ]
