(** Terminal dashboard rendering for [vstamp top].

    Pure: a frame is computed from data already fetched — a
    {!Registry.diff} between two successive [/stats.json] snapshots,
    the current snapshot, the [/healthz] object and the recent event
    lines — and returned as a string (ANSI escapes only, no curses).
    The polling loop around it lives in the CLI. *)

val clear_screen : string
(** Cursor home + erase display — print before a frame to repaint in
    place. *)

val sparkline : ?width:int -> float list -> string
(** An eight-level unicode sparkline ([▁▂▃▄▅▆▇█]) of the values,
    oldest first, scaled to the series' own min/max (a flat series
    renders mid-height).  [width] keeps only the newest that many
    values; non-finite values are dropped; [""] when nothing
    remains. *)

val render :
  ?color:bool ->
  ?max_rows:int ->
  ?width:int ->
  ?events:string list ->
  ?health:Jsonx.t ->
  ?alerts:Jsonx.t ->
  ?sparks:(string * float list) list ->
  deltas:Registry.delta list ->
  snapshot:Jsonx.t ->
  unit ->
  string
(** One frame: a health header, an alerts panel (from an
    [/alerts.json] object — firing rules red, pending yellow), the
    busiest counters with their per-second rates (a [reset] delta is
    flagged), the current gauges, a divergence panel (the
    {!Convergence} gauge families and the [*_delta_efficiency]
    sync-accounting gauges, shown only when the snapshot carries
    them), an identity-space panel (the [vstamp_idspace_*] and
    [sim_churn_*] fragmentation/reclamation gauges a churn run
    publishes, shown only when the snapshot carries them), a
    flight-recorder history panel ([sparks]: one {!sparkline}
    row per named series, fed from [/range.json] bucket averages),
    histogram summaries from [snapshot], and the tail of [events]
    (newest last).  [color] (default [true]) toggles the ANSI styling;
    [max_rows] (default 12) caps each table; [width] (default 100)
    truncates long lines. *)

val render_cluster : ?color:bool -> ?width:int -> Jsonx.t -> string
(** One frame of the multi-node panel, from a [/cluster.json] roll-up
    ({!Cluster.collect}): a summary header (nodes up / total, firing
    alerts, the cluster trace id when present) and one row per node —
    green/red up marker, id, port, status, uptime, iteration / event /
    request totals and its own firing-alert count.  Down nodes show
    the scrape error instead. *)
