(* A deliberately small HTTP/1.1 server: GET only, Connection: close,
   one thread per connection.  The hot paths of the embedding process
   never block on a scrape — handlers only read registry snapshots and
   a guarded event ring. *)

type subscriber = {
  sub_mutex : Mutex.t;
  sub_cond : Condition.t;
  sub_queue : Event.t Queue.t;
  mutable sub_closed : bool;
}

let sub_queue_cap = 1024

type t = {
  registry : Registry.t;
  health : unit -> (string * Jsonx.t) list;
  tsdb : Tsdb.t option;
  alerts : Alert.t option;
  cluster : (unit -> Jsonx.t) option;
  peers : (unit -> Jsonx.t) option;
  listen_fd : Unix.file_descr;
  bound_addr : Unix.sockaddr;
  bound_port : int;
  started_s : float;
  recent_cap : int;
  mutex : Mutex.t;
  (* everything below is guarded by [mutex] *)
  recent : Event.t Queue.t;
  mutable subscribers : subscriber list;
  mutable conn_threads : (int * Thread.t) list;
  mutable events_n : int;
  mutable requests_n : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- low-level socket IO --- *)

(* A writer must survive two signals-in-disguise: EINTR (a signal
   landed mid-write — retry from the same offset) and EPIPE (the peer
   hung up — with SIGPIPE ignored it surfaces as an error the caller
   treats as a normal hangup, never as a partial silent write). *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read until the blank line ending the request head (we never accept
   bodies), bounded so a hostile client cannot balloon memory. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Error "request head too large"
    else
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some _
        when String.length s >= 4
             && (let rec find i =
                   i + 3 < String.length s
                   && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                        && s.[i + 3] = '\n')
                      || find (i + 1))
                 in
                 find 0) ->
          Ok s
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> if Buffer.length buf = 0 then Error "empty request" else Ok s
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Error "request timed out")
  in
  go ()

let parse_request_line head =
  match String.index_opt head '\n' with
  | None -> Error "no request line"
  | Some i -> (
      let line = String.trim (String.sub head 0 i) in
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
          Ok (meth, target)
      | _ -> Error "malformed request line")

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let query = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | None -> None
            | Some j ->
                Some
                  ( String.sub kv 0 j,
                    String.sub kv (j + 1) (String.length kv - j - 1) ))
          (String.split_on_char '&' query)
      in
      (path, params)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

(* [head] sends the headers a GET would (Content-Length included) with
   no body — the HEAD method contract. *)
let respond ?(head = false) ?(extra = []) fd ~status ~content_type body =
  let extra =
    String.concat "" (List.map (fun h -> h ^ "\r\n") extra)
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\n\
        Content-Type: %s\r\n\
        Content-Length: %d\r\n\
        %sConnection: close\r\n\
        \r\n\
        %s"
       status (status_text status) content_type (String.length body) extra
       (if head then "" else body))

let respond_json ?head fd ~status j =
  respond ?head fd ~status ~content_type:"application/json"
    (Jsonx.to_string j ^ "\n")

(* --- handlers --- *)

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let sum_counters_with_prefix t prefix =
  List.fold_left
    (fun acc (name, m) ->
      match m with
      | Registry.Counter c when String.starts_with ~prefix name ->
          acc + Metric.count c
      | _ -> acc)
    0
    (Registry.snapshot t.registry)

let health_fields t =
  let uptime = Clock.now_s () -. t.started_s in
  let violations =
    sum_counters_with_prefix t "vstamp_invariant_violations_total"
  in
  let requests_n, events_n =
    locked t (fun () -> (t.requests_n, t.events_n))
  in
  [
    ("status", Jsonx.String (if violations = 0 then "ok" else "violations"));
    ("uptime_s", Jsonx.Float uptime);
    ("requests_total", Jsonx.Int requests_n);
    ("events_total", Jsonx.Int events_n);
    ("invariant_violations", Jsonx.Int violations);
  ]
  @ t.health ()

let recent_events t =
  locked t (fun () -> List.of_seq (Queue.to_seq t.recent))

let handle_events_json ?head t fd params =
  let events = recent_events t in
  let events =
    match
      Option.bind (List.assoc_opt "n" params) int_of_string_opt
    with
    | Some n when n >= 0 ->
        let len = List.length events in
        if len > n then List.filteri (fun i _ -> i >= len - n) events
        else events
    | _ -> events
  in
  respond_json ?head fd ~status:200
    (Jsonx.List (List.map Event.to_json events))

let write_chunk fd line =
  write_all fd
    (Printf.sprintf "%x\r\n%s\n\r\n" (String.length line + 1) line)

(* Stream the ring, then live events, as one JSONL line per chunk.
   The subscriber queue is bounded; when a client reads too slowly the
   oldest queued events are dropped so the feed stays live. *)
let handle_events_stream t fd =
  let sub =
    {
      sub_mutex = Mutex.create ();
      sub_cond = Condition.create ();
      sub_queue = Queue.create ();
      sub_closed = false;
    }
  in
  let backlog = locked t (fun () ->
      t.subscribers <- sub :: t.subscribers;
      List.of_seq (Queue.to_seq t.recent))
  in
  let unsubscribe () =
    locked t (fun () ->
        t.subscribers <- List.filter (fun s -> s != sub) t.subscribers)
  in
  Fun.protect ~finally:unsubscribe (fun () ->
      write_all fd
        "HTTP/1.1 200 OK\r\n\
         Content-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\n\
         Connection: close\r\n\
         \r\n";
      List.iter (fun e -> write_chunk fd (Event.to_string e)) backlog;
      let rec pump () =
        Mutex.lock sub.sub_mutex;
        while Queue.is_empty sub.sub_queue && not sub.sub_closed do
          Condition.wait sub.sub_cond sub.sub_mutex
        done;
        let batch = List.of_seq (Queue.to_seq sub.sub_queue) in
        Queue.clear sub.sub_queue;
        let closed = sub.sub_closed in
        Mutex.unlock sub.sub_mutex;
        List.iter (fun e -> write_chunk fd (Event.to_string e)) batch;
        if closed then write_all fd "0\r\n\r\n" else pump ()
      in
      pump ())

(* /range.json: the flight-recorder query endpoint.  Without [metric],
   the series index.  [from]/[to] accept absolute unix seconds or
   negative offsets relative to now; [step] defaults to a 1/100 slice
   of the window. *)
let handle_range_json ?head t fd params =
  match t.tsdb with
  | None ->
      respond ?head fd ~status:404 ~content_type:"text/plain"
        "no flight recorder attached\n"
  | Some tsdb -> (
      match List.assoc_opt "metric" params with
      | None -> respond_json ?head fd ~status:200 (Tsdb.index_json tsdb)
      | Some metric -> (
          let now = Clock.now_s () in
          let time_param name default =
            match List.assoc_opt name params with
            | None -> Ok default
            | Some s -> (
                match float_of_string_opt s with
                | Some f when f < 0. -> Ok (now +. f)
                | Some f -> Ok f
                | None -> Error name)
          in
          match (time_param "from" (now -. 300.), time_param "to" now) with
          | Error p, _ | _, Error p ->
              respond ?head fd ~status:400 ~content_type:"text/plain"
                (Printf.sprintf "bad %s parameter\n" p)
          | Ok from_s, Ok to_s -> (
              let default_step =
                let span = to_s -. from_s in
                if span > 0. then span /. 100. else 1.
              in
              match
                match List.assoc_opt "step" params with
                | None -> Ok default_step
                | Some s -> (
                    match float_of_string_opt s with
                    | Some f when f > 0. -> Ok f
                    | _ -> Error ())
              with
              | Error () ->
                  respond ?head fd ~status:400 ~content_type:"text/plain"
                    "bad step parameter\n"
              | Ok step_s ->
                  respond_json ?head fd ~status:200
                    (Tsdb.range_json tsdb ~metric ~from_s ~to_s ~step_s))))

let handle_alerts_json ?head t fd =
  match t.alerts with
  | None ->
      respond ?head fd ~status:404 ~content_type:"text/plain"
        "no alert engine attached\n"
  | Some alerts -> respond_json ?head fd ~status:200 (Alert.to_json alerts)

(* The federation endpoint: the roll-up callback fans out to the
   worker nodes, so it runs here in the connection thread and never
   blocks the embedding process. *)
let handle_cluster_json ?head t fd =
  match t.cluster with
  | None ->
      respond ?head fd ~status:404 ~content_type:"text/plain"
        "no cluster attached\n"
  | Some roll_up -> (
      match roll_up () with
      | j -> respond_json ?head fd ~status:200 j
      | exception _ ->
          respond ?head fd ~status:500 ~content_type:"text/plain"
            "cluster roll-up failed\n")

(* The peer-lifecycle endpoint: the callback snapshots the embedding
   node's dialer states (connected / backoff / attempts), so it is
   cheap and never blocks on the network. *)
let handle_peers_json ?head t fd =
  match t.peers with
  | None ->
      respond ?head fd ~status:404 ~content_type:"text/plain"
        "no peers attached\n"
  | Some snapshot -> (
      match snapshot () with
      | j -> respond_json ?head fd ~status:200 j
      | exception _ ->
          respond ?head fd ~status:500 ~content_type:"text/plain"
            "peer snapshot failed\n")

let handle_request t fd =
  match read_head fd with
  | Error _ -> respond fd ~status:400 ~content_type:"text/plain" "bad request\n"
  | Ok req_head -> (
      match parse_request_line req_head with
      | Error _ ->
          respond fd ~status:400 ~content_type:"text/plain" "bad request\n"
      | Ok (meth, _) when meth <> "GET" && meth <> "HEAD" ->
          respond fd ~status:405 ~extra:[ "Allow: GET, HEAD" ]
            ~content_type:"text/plain"
            "method not allowed; this server speaks GET and HEAD\n"
      | Ok (meth, target) -> (
          let head = String.equal meth "HEAD" in
          locked t (fun () -> t.requests_n <- t.requests_n + 1);
          let path, params = split_target target in
          match path with
          | "/metrics" ->
              respond ~head fd ~status:200
                ~content_type:prometheus_content_type
                (Registry.to_prometheus t.registry)
          | "/healthz" ->
              respond_json ~head fd ~status:200 (Jsonx.Obj (health_fields t))
          | "/stats.json" ->
              respond_json ~head fd ~status:200 (Registry.to_json t.registry)
          | "/lag.json" ->
              respond_json ~head fd ~status:200
                (Convergence.lag_json t.registry)
          | "/idspace.json" ->
              respond_json ~head fd ~status:200 (Idspace.view_json t.registry)
          | "/range.json" -> handle_range_json ~head t fd params
          | "/alerts.json" -> handle_alerts_json ~head t fd
          | "/cluster.json" -> handle_cluster_json ~head t fd
          | "/peers.json" -> handle_peers_json ~head t fd
          | "/events.json" -> handle_events_json ~head t fd params
          | "/events" ->
              if head then
                (* the headers a streaming GET would send; no body,
                   the stream is not entered *)
                write_all fd
                  "HTTP/1.1 200 OK\r\n\
                   Content-Type: application/x-ndjson\r\n\
                   Transfer-Encoding: chunked\r\n\
                   Connection: close\r\n\
                   \r\n"
              else handle_events_stream t fd
          | "/" ->
              respond ~head fd ~status:200 ~content_type:"text/plain"
                "vstamp telemetry: /metrics /healthz /stats.json /lag.json \
                 /idspace.json /range.json /alerts.json /cluster.json \
                 /peers.json /events /events.json\n"
          | _ ->
              respond ~head fd ~status:404 ~content_type:"text/plain"
                "not found\n"))

(* --- server lifecycle --- *)

let publish t e =
  let subs =
    locked t (fun () ->
        t.events_n <- t.events_n + 1;
        Queue.push e t.recent;
        while Queue.length t.recent > t.recent_cap do
          ignore (Queue.pop t.recent)
        done;
        t.subscribers)
  in
  List.iter
    (fun sub ->
      Mutex.lock sub.sub_mutex;
      Queue.push e sub.sub_queue;
      while Queue.length sub.sub_queue > sub_queue_cap do
        ignore (Queue.pop sub.sub_queue)
      done;
      Condition.signal sub.sub_cond;
      Mutex.unlock sub.sub_mutex)
    subs

let handle_connection t fd =
  let finally () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    let self = Thread.id (Thread.self ()) in
    locked t (fun () ->
        t.conn_threads <- List.remove_assoc self t.conn_threads)
  in
  Fun.protect ~finally (fun () ->
      (* Never let a hostile or vanished client hang a handler thread
         forever; streaming writes fail with EPIPE once the client is
         gone, which the catch-all below treats as a normal hangup. *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
       with Unix.Unix_error _ -> ());
      try handle_request t fd
      with Unix.Unix_error _ | Sys_error _ -> ())

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      if locked t (fun () -> t.stopping) then (
        (try Unix.close fd with Unix.Unix_error _ -> ()))
      else begin
        locked t (fun () ->
            let th = Thread.create (fun () -> handle_connection t fd) () in
            t.conn_threads <- (Thread.id th, th) :: t.conn_threads);
        accept_loop t
      end
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      if not (locked t (fun () -> t.stopping)) then accept_loop t
  | exception Unix.Unix_error _ -> ()

let create ?(registry = Registry.default) ?(health = fun () -> []) ?tsdb
    ?alerts ?cluster ?peers ?(recent = 64) ?(addr = "127.0.0.1") ~port () =
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let inet = Unix.inet_addr_of_string addr in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_addr = Unix.getsockname fd in
  let bound_port =
    match bound_addr with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t =
    {
      registry;
      health;
      tsdb;
      alerts;
      cluster;
      peers;
      listen_fd = fd;
      bound_addr;
      bound_port;
      started_s = Clock.now_s ();
      recent_cap = max 1 recent;
      mutex = Mutex.create ();
      recent = Queue.create ();
      subscribers = [];
      conn_threads = [];
      events_n = 0;
      requests_n = 0;
      stopping = false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port

let event_sink t = Sink.of_fn (fun e -> publish t e)

let requests t = locked t (fun () -> t.requests_n)

let running t = not (locked t (fun () -> t.stopping))

let stop t =
  let already = locked t (fun () ->
      let s = t.stopping in
      t.stopping <- true;
      s)
  in
  if not already then begin
    (* wake the accept loop with a throwaway connection to ourselves *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd t.bound_addr
        with Unix.Unix_error _ -> ());
       (try Unix.close fd with Unix.Unix_error _ -> ())
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* release the streaming clients, then wait for every handler *)
    let subs, threads =
      locked t (fun () -> (t.subscribers, List.map snd t.conn_threads))
    in
    List.iter
      (fun sub ->
        Mutex.lock sub.sub_mutex;
        sub.sub_closed <- true;
        Condition.broadcast sub.sub_cond;
        Mutex.unlock sub.sub_mutex)
      subs;
    List.iter Thread.join threads
  end

(* --- client --- *)

module Client = struct
  let rec read_all fd buf chunk =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_all fd buf chunk
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all fd buf chunk

  let find_sub s sub from =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go from

  let dechunk body =
    let buf = Buffer.create (String.length body) in
    let rec go off =
      match find_sub body "\r\n" off with
      | None -> Buffer.contents buf (* truncated stream: keep what we have *)
      | Some i -> (
          let len_str = String.trim (String.sub body off (i - off)) in
          match int_of_string_opt ("0x" ^ len_str) with
          | None | Some 0 -> Buffer.contents buf
          | Some len when i + 2 + len <= String.length body ->
              Buffer.add_string buf (String.sub body (i + 2) len);
              go (i + 2 + len + 2)
          | Some _ -> Buffer.contents buf)
    in
    go 0

  (* [Unix.inet_addr_of_string] raises [Failure] on anything that is
     not a literal address ("localhost" included), so fall back to a
     resolver lookup and keep the whole thing in the [result]. *)
  let resolve host =
    match Unix.inet_addr_of_string host with
    | addr -> Ok addr
    | exception Failure _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> Error (Printf.sprintf "cannot resolve host %S" host)
        | addrs -> Ok addrs.(0)
        | exception Not_found ->
            Error (Printf.sprintf "cannot resolve host %S" host))

  (* header names lowercased; values trimmed *)
  let parse_headers head =
    match String.split_on_char '\n' head with
    | [] -> []
    | _ :: lines ->
        List.filter_map
          (fun line ->
            let line = String.trim line in
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1))
                  ))
          lines

  let request ?(host = "127.0.0.1") ?(timeout_s = 5.0) ?(meth = "GET") ~port
      path =
    (* a server vanishing mid-request must surface as an [Error], not
       kill the client with an unhandled SIGPIPE; the socket timeouts
       keep a stalled endpoint from hanging the caller forever *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    match resolve host with
    | Error m -> Error m
    | Ok inet -> (
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
          Unix.connect fd (Unix.ADDR_INET (inet, port));
          write_all fd
            (Printf.sprintf
               "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
               meth path host);
          read_all fd (Buffer.create 4096) (Bytes.create 4096))
    with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Sys_error m -> Error m
    | raw -> (
        match find_sub raw "\r\n\r\n" 0 with
        | None -> Error "malformed response: no header terminator"
        | Some i -> (
            let head = String.sub raw 0 i in
            let body =
              String.sub raw (i + 4) (String.length raw - i - 4)
            in
            let status_line =
              match String.index_opt head '\r' with
              | Some j -> String.sub head 0 j
              | None -> head
            in
            match String.split_on_char ' ' status_line with
            | _ :: code :: _ -> (
                match int_of_string_opt code with
                | None -> Error "malformed status line"
                | Some status ->
                    let headers = parse_headers head in
                    let chunked =
                      match List.assoc_opt "transfer-encoding" headers with
                      | Some v -> (
                          match find_sub (String.lowercase_ascii v) "chunked" 0
                          with
                          | Some _ -> true
                          | None -> false)
                      | None -> false
                    in
                    Ok
                      ( status,
                        headers,
                        if chunked then dechunk body else body ))
            | _ -> Error "malformed status line")))

  let get ?host ?timeout_s ~port path =
    match request ?host ?timeout_s ~port path with
    | Error m -> Error m
    | Ok (status, _, body) -> Ok (status, body)
end
