(** Merging per-node span logs into one causally ordered timeline.

    Wall clocks cannot order spans across unsynchronized processes;
    the version-stamp labels the spans carry can.  {!merge}
    topologically sorts spans along strict stamp order (between spans
    sharing a trace and a stamp domain) and parent links, breaking
    ties deterministically by (wall time, node, span id) — so the same
    input always yields the same linearization, and equal input sets
    in any order yield byte-identical {!to_chrome} output.

    The stamp mechanism lives above this library, so the comparison is
    a callback over text labels. *)

type leq = string -> string -> bool option
(** [leq a b] compares two stamp labels: [Some (a <= b)] when both
    parse, [None] otherwise (unparseable labels contribute no
    ordering). *)

type report = {
  rp_spans : int;
  rp_nodes : string list;
  rp_stamped : int;  (** spans carrying a stamp label *)
  rp_ordered_pairs : int;
      (** pairs strictly ordered by stamp [leq] within a scope *)
  rp_cross_node_ordered_pairs : int;
      (** the subset of ordered pairs whose spans live on different
          nodes — the pairs wall clocks could not have ordered *)
  rp_contradictions : (Trace_ctx.span * Trace_ctx.span) list;
      (** [(a, b)] where stamps say [a] happens before [b] but [b]
          finished entirely before [a] began on the wall clock *)
}

val load_file : string -> (Trace_ctx.span list, string) result
(** Load one span-log (JSONL) file. *)

val merge : leq:leq -> Trace_ctx.span list -> Trace_ctx.span list
(** Causal linearization of the given spans (typically the
    concatenation of every node's log). *)

val validate : leq:leq -> Trace_ctx.span list -> report
(** Check every stamp-ordered pair against wall-clock order.  A
    contradiction means the causally later span finished entirely
    before the earlier one began; overlapping intervals are expected
    and not flagged. *)

val report_schema : string
(** ["vstamp-causal-report/1"]. *)

(** {1 Memo bound}

    {!merge} and {!validate} memoize the strict-order answer per
    distinct label pair.  The memo is bounded: when it reaches the
    limit it is reset (the [Name_packed] discipline), trading
    recomputation for a hard memory ceiling on week-long merges. *)

val default_memo_limit : int
(** [65536] label pairs. *)

val set_memo_limit : int -> unit
(** Change the bound (process-wide); mainly for tests.
    @raise Invalid_argument when the limit is below 1. *)

val memo_resets : unit -> int
(** Cumulative reset-on-full events since process start. *)

val report_json : report -> Jsonx.t

val to_chrome : Trace_ctx.span list -> Jsonx.t
(** Chrome trace-event (about://tracing, Perfetto) export of an
    already merged span list: one process lane per node, complete
    ("X") events, with each span's causal position recorded as a
    [seq] argument. *)
