(** Convergence observability: divergence matrices, replica staleness,
    and time-to-convergence — the quantities the anti-entropy work will
    be tuned against.

    The module is deliberately generic: it never names a concrete
    mechanism.  A divergence matrix is computed from any array of
    replica states plus the mechanism's [leq]; staleness is computed
    from any causal-history representation plus its [union]/[cardinal].
    The simulator instantiates both with {!Vstamp_sim.Tracker}
    mechanisms and the causal-history oracle; tests can instantiate
    them with integers.

    Published metric families (all gauges, set by the [publish_*]
    helpers):

    - [vstamp_replica_lag{replica=...}] — events known somewhere in the
      system but not at this replica;
    - [vstamp_divergence_pairs{kind=...}] — unordered replica pairs by
      relation kind ([equal], [dominates], [dominated], [concurrent]);
    - [vstamp_frontier_width] — equivalence classes of maximal replicas
      (1 when the system has converged);
    - [vstamp_divergence_entropy] — Shannon entropy (bits) of the
      pair-kind distribution;
    - [vstamp_convergence_ns] / [vstamp_convergence_steps] — wall time
      and logical steps from the last write to global dominance. *)

(** {1 Pairwise divergence} *)

type pair_kind = Equal | Dominates | Dominated | Concurrent

val classify : leq_ab:bool -> leq_ba:bool -> pair_kind
(** The relation of [a] to [b] given both [leq] directions. *)

val kind_slug : pair_kind -> string
(** [equal] / [dominates] / [dominated] / [concurrent] — the label
    values of [vstamp_divergence_pairs{kind=...}]. *)

val all_kinds : pair_kind list

type matrix
(** An [n] × [n] relation matrix over a snapshot of replica states;
    cell [(i, j)] is the relation of replica [i] to replica [j]. *)

val matrix : leq:('a -> 'a -> bool) -> 'a array -> matrix
(** Classify every pair with two [leq] calls.  [leq] must be the
    mechanism's frontier order (for version stamps it compares update
    components only, so forked-but-synchronized replicas count as
    equal). *)

val size : matrix -> int

val cell : matrix -> int -> int -> pair_kind
(** Diagonal cells are [Equal]. *)

val pair_counts : matrix -> (pair_kind * int) list
(** Unordered pairs ([i < j]) bucketed by kind, every kind present. *)

val converged : matrix -> bool
(** Every pair compares [Equal] — the system is at a single frontier
    point.  [true] for empty and singleton snapshots. *)

val width : matrix -> int
(** The number of equivalence classes among maximal (not strictly
    dominated) replicas: 1 after convergence, up to [n] under full
    divergence.  [0] only for an empty snapshot. *)

val entropy : matrix -> float
(** Shannon entropy (bits) of the pair-kind distribution; [0.] when
    every pair relates the same way (or there are fewer than two
    replicas). *)

val pp_matrix : Format.formatter -> matrix -> unit
(** Human divergence matrix: [=] equal, [>] dominates, [<] dominated,
    [#] concurrent, [.] diagonal. *)

val matrix_to_json : matrix -> Jsonx.t
(** [{"n": 3, "rows": [".>#", ...]}] — one string per row with the
    {!pp_matrix} cell characters. *)

(** {1 Replica staleness} *)

val staleness :
  union:('h -> 'h -> 'h) -> cardinal:('h -> int) -> 'h list -> int array
(** Per-replica lag against the global knowledge: element [i] is
    [cardinal (union of all histories) - cardinal h_i] — the events
    known somewhere but not at replica [i].  Zero everywhere iff every
    replica knows everything. *)

(** {1 Convergence timing} *)

(** Tracks steps-and-wall-time from the last write to global dominance.
    Feed every write and every convergence check; the timer latches the
    first check that observes convergence after the final write (a
    later divergent check unlatches it, so the result always describes
    {e stable} convergence). *)
module Timer : sig
  type t

  val create : unit -> t

  val note_write : t -> step:int -> unit

  val note_check : t -> step:int -> converged:bool -> unit

  val result : t -> (int64 * int) option
  (** [(ns, steps)] from the last write to convergence; [None] while
      diverged or before any write. *)

  val publish : ?registry:Registry.t -> t -> unit
  (** Set [vstamp_convergence_ns] / [vstamp_convergence_steps] when a
      result is available. *)
end

(** {1 Gauge publication} *)

val publish_matrix : ?registry:Registry.t -> matrix -> unit
(** Set [vstamp_divergence_pairs{kind=...}] (all four kinds),
    [vstamp_frontier_width] and [vstamp_divergence_entropy]. *)

val publish_lag : ?registry:Registry.t -> int array -> unit
(** Set [vstamp_replica_lag{replica="i"}] per replica. *)

(** {1 The /lag.json payload} *)

val lag_json : Registry.t -> Jsonx.t
(** Assemble the convergence view of a registry: [replica_lag] (object
    keyed by replica label), [divergence_pairs] (keyed by kind),
    [frontier_width], [divergence_entropy], [convergence_ns],
    [convergence_steps] ([null] before convergence has been observed)
    and [sync_delta] (every [*_delta_efficiency] gauge and
    [*_shipped_bytes_total] / [*_minimal_bytes_total] /
    [*_redundant_bytes_total] counter).  Served by [Http_export] as
    [GET /lag.json]. *)
