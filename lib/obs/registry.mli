(** A named metric registry with three exposition formats.

    Metrics are addressed by name; the name may carry Prometheus-style
    labels inline, e.g. [{sim_op_ns{tracker="stamps",op="join"}}] — the
    registry treats the whole string as the key and the expositions
    understand the label syntax.  [counter]/[gauge]/[histogram] are
    get-or-create and raise [Invalid_argument] if the name is already
    registered with a different kind. *)

type t

val create : unit -> t

val default : t
(** The process-wide registry, used when no explicit registry is
    passed. *)

type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

val counter : t -> string -> Metric.counter

val gauge : t -> string -> Metric.gauge

val histogram : t -> string -> Metric.histogram

val find : t -> string -> metric option

val cardinal : t -> int

val snapshot : t -> (string * metric) list
(** All metrics, sorted by name. *)

val reset : t -> unit
(** Zero every metric, keeping registrations. *)

val clear : t -> unit
(** Drop every registration. *)

(** {1 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters and gauges as single samples,
    histograms as summaries (quantile-labelled samples plus [_sum],
    [_count], [_max]). *)

val to_json : t -> Jsonx.t
(** One object keyed by metric name; histograms expose
    count/sum/mean/min/max/p50/p95/p99. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable aligned table of the same data. *)
