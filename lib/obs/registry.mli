(** A named metric registry with three exposition formats.

    Metrics are addressed by name; the name may carry Prometheus-style
    labels inline, e.g. [{sim_op_ns{tracker="stamps",op="join"}}] — the
    registry treats the whole string as the key and the expositions
    understand the label syntax.  [counter]/[gauge]/[histogram] are
    get-or-create and raise [Invalid_argument] if the name is already
    registered with a different kind. *)

type t

val create : unit -> t

val default : t
(** The process-wide registry, used when no explicit registry is
    passed. *)

type metric =
  | Counter of Metric.counter
  | Gauge of Metric.gauge
  | Histogram of Metric.histogram

val counter : t -> string -> Metric.counter

val gauge : t -> string -> Metric.gauge

val histogram : t -> string -> Metric.histogram

val find : t -> string -> metric option

val cardinal : t -> int

val snapshot : t -> (string * metric) list
(** All metrics, sorted by name. *)

val reset : t -> unit
(** Zero every metric, keeping registrations. *)

val clear : t -> unit
(** Drop every registration. *)

(** {1 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters and gauges as single samples,
    histograms as summaries (quantile-labelled samples plus [_sum],
    [_count], [_max]). *)

(** {1 Label helpers}

    Metric names carry their labels inline ([name{k="v",...}]); these
    helpers build such names from raw label values, applying the
    exposition-format escaping (backslash, double quote and line feed
    each get a backslash prefix, the line feed as [\n]) so any byte
    string is a safe label value. *)

val escape_label_value : string -> string

val unescape_label_value : string -> (string, string) result
(** Inverse of {!escape_label_value}; errors on a dangling or unknown
    escape. *)

val with_labels : string -> (string * string) list -> string
(** [with_labels "kvs_ops_total" ["op", "get"]] is
    [{kvs_ops_total{op="get"}}], label values escaped.  With an empty
    list, the bare name. *)

val to_json : t -> Jsonx.t
(** One object keyed by metric name; histograms expose
    count/sum/mean/min/max/p50/p95/p99. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable aligned table of the same data. *)

(** {1 Snapshot differencing}

    The live-telemetry plane observes a process through successive
    [/stats.json] snapshots (the {!to_json} form).  {!diff} turns two
    such snapshots plus the wall-clock gap between them into
    per-metric rates — the arithmetic behind [vstamp top]. *)

type kind = Kcounter | Kgauge | Khistogram

type delta = {
  name : string;
  kind : kind;
  value : float;
      (** Current value: a counter's count, a gauge's value, a
          histogram's observation count. *)
  change : float;
      (** [value - previous value]; after a counter reset, just
          [value] (the monotone increase since the restart). *)
  rate : float;
      (** [change /. elapsed_s]; [0.] when [elapsed_s <= 0.] (two
          snapshots taken at the same instant carry no rate
          information). *)
  reset : bool;
      (** A counter (or histogram count) went backwards between the
          snapshots — the process restarted or the registry was
          reset. *)
}

val diff : elapsed_s:float -> prev:Jsonx.t -> Jsonx.t -> delta list
(** [diff ~elapsed_s ~prev cur] pairs the metrics of two {!to_json}
    snapshots by name, sorted by name.  Metrics absent from [prev]
    (e.g. registered between the snapshots) count as previously zero;
    metrics absent from [cur] are dropped.  Non-snapshot JSON shapes
    are ignored field-wise (an [Obj] without a ["count"] field is not
    a histogram and is skipped). *)
