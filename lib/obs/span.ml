type t = { name : string; registry : Registry.t; t0 : int64 }

let record ?(registry = Registry.default) name ns =
  Metric.observe (Registry.histogram registry name) (Int64.to_float ns)

let start ?(registry = Registry.default) name =
  { name; registry; t0 = Clock.now_ns () }

let stop s =
  let d = Int64.sub (Clock.now_ns ()) s.t0 in
  record ~registry:s.registry s.name d;
  d

let time ?registry name f =
  let t0 = Clock.now_ns () in
  Fun.protect
    ~finally:(fun () -> record ?registry name (Int64.sub (Clock.now_ns ()) t0))
    f
