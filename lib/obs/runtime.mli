(** OCaml runtime / GC telemetry: a [Gc.quick_stat] sampler that
    publishes runtime health into a {!Registry}.

    Each {!sample} reads [Gc.quick_stat] and updates:

    - [runtime_minor_words_total], [runtime_major_words_total],
      [runtime_promoted_words_total] — monotone word counters, fed by
      the increase since the previous sample;
    - [runtime_minor_collections_total],
      [runtime_major_collections_total], [runtime_compactions_total] —
      collection counters, same delta discipline;
    - [runtime_heap_words], [runtime_top_heap_words] — gauges of the
      current and peak major-heap size;
    - [runtime_allocation_rate_words_per_s] — gauge: words allocated
      ([minor + major - promoted]) per second since the previous
      sample; [0.] until two samples exist.

    Attachable to any registry; the soak driver samples it on the
    flight-recorder cadence by default. *)

type t

val create : ?registry:Registry.t -> unit -> t
(** Register the metric families (zeroed) and remember the baseline
    [Gc.quick_stat], so the counters measure growth from attach time,
    not from process start.  [registry] defaults to
    {!Registry.default}. *)

val sample : ?now_s:float -> t -> unit
(** Take one sample.  [now_s] (default {!Clock.now_s}) feeds the
    allocation-rate gauge. *)

val samples_taken : t -> int
