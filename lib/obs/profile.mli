(** Op-level profiler: wall-clock time and allocation attributed to
    call stacks.

    A profile is a table keyed by a {e stack} — an ordered frame list
    such as [["stamps"; "join"]] — accumulating call count, elapsed
    nanoseconds (via {!Clock}) and allocated bytes (via
    [Gc.allocated_bytes], so minor+major words promoted to bytes, exact
    for single-threaded code).  The simulator attributes every tracker
    operation, monitor check and oracle replay this way (see
    {!Vstamp_sim.System.run}'s [?profile]).

    Two renderings: a top-N hot-op table for humans, and the
    collapsed-stack ("folded") text format — one
    [frame;frame;frame <weight>] line per stack — consumed unchanged by
    Brendan Gregg's [flamegraph.pl], inferno, speedscope and friends. *)

type t

val create : unit -> t

val record : t -> stack:string list -> ns:int64 -> alloc_bytes:float -> unit
(** Account one call of [stack].  [stack] must be non-empty;
    @raise Invalid_argument otherwise. *)

val time : t -> string list -> (unit -> 'a) -> 'a
(** Run the thunk, measuring elapsed {!Clock} time and allocated bytes,
    and account them to the stack.  The measurement is recorded even if
    the thunk raises. *)

type row = {
  stack : string list;
  count : int;
  total_ns : int64;
  total_alloc_bytes : float;
}

val rows : t -> row list
(** All rows, sorted by stack (deterministic). *)

val total_ns : t -> int64

val top : ?by:[ `Ns | `Alloc | `Count ] -> n:int -> t -> row list
(** The [n] heaviest rows, by total time (default), allocation or call
    count. *)

val to_folded : ?weight:[ `Ns | `Alloc ] -> t -> string
(** Collapsed-stack text: one [a;b;c <integer>] line per stack, sorted
    by stack, trailing newline, weight in nanoseconds (default) or
    bytes.  Frame bytes that would break the format ([';'], space,
    newline) are rewritten to ['_']. *)

val pp_top : ?by:[ `Ns | `Alloc | `Count ] -> ?n:int -> Format.formatter -> t -> unit
(** Aligned hot-op table ([n] defaults to 10): stack, calls, total ms,
    ns/call, allocated MiB. *)

val to_json : t -> Jsonx.t
(** [[{"stack": [...], "count": n, "total_ns": ns, "alloc_bytes": b}]],
    sorted by stack. *)

val reset : t -> unit
