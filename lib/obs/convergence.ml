type pair_kind = Equal | Dominates | Dominated | Concurrent

let classify ~leq_ab ~leq_ba =
  match (leq_ab, leq_ba) with
  | true, true -> Equal
  | false, true -> Dominates
  | true, false -> Dominated
  | false, false -> Concurrent

let kind_slug = function
  | Equal -> "equal"
  | Dominates -> "dominates"
  | Dominated -> "dominated"
  | Concurrent -> "concurrent"

let all_kinds = [ Equal; Dominates; Dominated; Concurrent ]

type matrix = { n : int; cells : pair_kind array array }

let matrix ~leq xs =
  let n = Array.length xs in
  let cells =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then Equal
            else classify ~leq_ab:(leq xs.(i) xs.(j)) ~leq_ba:(leq xs.(j) xs.(i))))
  in
  { n; cells }

let size m = m.n

let cell m i j = m.cells.(i).(j)

let fold_pairs f acc m =
  let acc = ref acc in
  for i = 0 to m.n - 1 do
    for j = i + 1 to m.n - 1 do
      acc := f !acc m.cells.(i).(j)
    done
  done;
  !acc

let pair_counts m =
  let count k = fold_pairs (fun n k' -> if k = k' then n + 1 else n) 0 m in
  List.map (fun k -> (k, count k)) all_kinds

let converged m = fold_pairs (fun ok k -> ok && k = Equal) true m

let width m =
  if m.n = 0 then 0
  else begin
    (* maximal = not strictly below any other replica *)
    let maximal =
      Array.init m.n (fun i ->
          let below = ref false in
          for j = 0 to m.n - 1 do
            if j <> i && m.cells.(i).(j) = Dominated then below := true
          done;
          not !below)
    in
    (* count equivalence classes among the maximal replicas: a maximal
       replica is a fresh class unless an earlier maximal one equals it *)
    let classes = ref 0 in
    for i = 0 to m.n - 1 do
      if maximal.(i) then begin
        let seen = ref false in
        for j = 0 to i - 1 do
          if maximal.(j) && m.cells.(i).(j) = Equal then seen := true
        done;
        if not !seen then incr classes
      end
    done;
    !classes
  end

let entropy m =
  let pairs = m.n * (m.n - 1) / 2 in
  if pairs = 0 then 0.
  else
    List.fold_left
      (fun h (_, c) ->
        if c = 0 then h
        else
          let p = float_of_int c /. float_of_int pairs in
          h -. (p *. (Float.log p /. Float.log 2.)))
      0. (pair_counts m)

let cell_char = function
  | Equal -> '='
  | Dominates -> '>'
  | Dominated -> '<'
  | Concurrent -> '#'

let pp_matrix ppf m =
  Format.fprintf ppf "    ";
  for j = 0 to m.n - 1 do
    Format.fprintf ppf "%3d" j
  done;
  Format.pp_print_newline ppf ();
  for i = 0 to m.n - 1 do
    Format.fprintf ppf "%3d " i;
    for j = 0 to m.n - 1 do
      let c = if i = j then '.' else cell_char m.cells.(i).(j) in
      Format.fprintf ppf "  %c" c
    done;
    Format.pp_print_newline ppf ()
  done

let matrix_to_json m =
  let row i =
    String.init m.n (fun j ->
        if i = j then '.' else cell_char m.cells.(i).(j))
  in
  Jsonx.Obj
    [
      ("n", Jsonx.Int m.n);
      ("rows", Jsonx.List (List.init m.n (fun i -> Jsonx.String (row i))));
    ]

(* --- staleness --- *)

let staleness ~union ~cardinal = function
  | [] -> [||]
  | h :: rest ->
      let total = cardinal (List.fold_left union h rest) in
      Array.of_list
        (List.map (fun hi -> total - cardinal hi) (h :: rest))

(* --- convergence timing --- *)

module Timer = struct
  type t = {
    mutable last_write : (int * int64) option;
    mutable converged_at : (int * int64) option;
  }

  let create () = { last_write = None; converged_at = None }

  let note_write t ~step =
    t.last_write <- Some (step, Clock.now_ns ());
    t.converged_at <- None

  let note_check t ~step ~converged =
    if converged then begin
      if t.converged_at = None then
        t.converged_at <- Some (step, Clock.now_ns ())
    end
    else t.converged_at <- None

  let result t =
    match (t.last_write, t.converged_at) with
    | Some (ws, wns), Some (cs, cns) ->
        Some (Int64.sub cns wns, cs - ws)
    | _ -> None

  let publish ?(registry = Registry.default) t =
    match result t with
    | None -> ()
    | Some (ns, steps) ->
        Metric.set
          (Registry.gauge registry "vstamp_convergence_ns")
          (Int64.to_float ns);
        Metric.set
          (Registry.gauge registry "vstamp_convergence_steps")
          (float_of_int steps)
end

(* --- gauge publication --- *)

let publish_matrix ?(registry = Registry.default) m =
  List.iter
    (fun (k, c) ->
      Metric.set
        (Registry.gauge registry
           (Registry.with_labels "vstamp_divergence_pairs"
              [ ("kind", kind_slug k) ]))
        (float_of_int c))
    (pair_counts m);
  Metric.set
    (Registry.gauge registry "vstamp_frontier_width")
    (float_of_int (width m));
  Metric.set (Registry.gauge registry "vstamp_divergence_entropy") (entropy m)

let publish_lag ?(registry = Registry.default) lags =
  Array.iteri
    (fun i lag ->
      Metric.set
        (Registry.gauge registry
           (Registry.with_labels "vstamp_replica_lag"
              [ ("replica", string_of_int i) ]))
        (float_of_int lag))
    lags

(* --- /lag.json --- *)

(* ["name{label=\"v\"}"] -> [Some v] when [label] is the (single)
   inline label of the name.  The convergence families only ever carry
   one label, so a full label parser is not needed here. *)
let label_value ~base ~label name =
  let prefix = base ^ "{" ^ label ^ "=\"" in
  let pn = String.length prefix and n = String.length name in
  if n > pn + 1
     && String.sub name 0 pn = prefix
     && String.sub name (n - 2) 2 = "\"}"
  then
    match
      Registry.unescape_label_value (String.sub name pn (n - pn - 2))
    with
    | Ok v -> Some v
    | Error _ -> None
  else None

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let metric_value = function
  | Registry.Counter c -> float_of_int (Metric.count c)
  | Registry.Gauge g -> Metric.value g
  | Registry.Histogram h -> float_of_int (Metric.observations h)

let lag_json registry =
  let replica_lag = ref [] in
  let pairs = ref [] in
  let width = ref Jsonx.Null in
  let entropy = ref Jsonx.Null in
  let conv_ns = ref Jsonx.Null in
  let conv_steps = ref Jsonx.Null in
  let delta = ref [] in
  List.iter
    (fun (name, metric) ->
      let v = metric_value metric in
      match label_value ~base:"vstamp_replica_lag" ~label:"replica" name with
      | Some r -> replica_lag := (r, Jsonx.Float v) :: !replica_lag
      | None -> (
          match
            label_value ~base:"vstamp_divergence_pairs" ~label:"kind" name
          with
          | Some k -> pairs := (k, Jsonx.Float v) :: !pairs
          | None ->
              if name = "vstamp_frontier_width" then width := Jsonx.Float v
              else if name = "vstamp_divergence_entropy" then
                entropy := Jsonx.Float v
              else if name = "vstamp_convergence_ns" then
                conv_ns := Jsonx.Float v
              else if name = "vstamp_convergence_steps" then
                conv_steps := Jsonx.Float v
              else if
                has_suffix ~suffix:"_delta_efficiency" name
                || has_suffix ~suffix:"_shipped_bytes_total" name
                || has_suffix ~suffix:"_minimal_bytes_total" name
                || has_suffix ~suffix:"_redundant_bytes_total" name
              then delta := (name, Jsonx.Float v) :: !delta))
    (Registry.snapshot registry);
  Jsonx.Obj
    [
      ("replica_lag", Jsonx.Obj (List.rev !replica_lag));
      ("divergence_pairs", Jsonx.Obj (List.rev !pairs));
      ("frontier_width", !width);
      ("divergence_entropy", !entropy);
      ("convergence_ns", !conv_ns);
      ("convergence_steps", !conv_steps);
      ("sync_delta", Jsonx.Obj (List.rev !delta));
    ]
