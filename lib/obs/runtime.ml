(* Gc.quick_stat sampler.  Word totals from the GC are floats that only
   grow; the registry's counters are ints, so each sample adds the
   integer part of the growth and carries the fractional remainder
   forward — the published totals never drift more than a word from
   the truth. *)

type accum = { counter : Metric.counter; mutable carry : float }

type t = {
  minor_words : accum;
  major_words : accum;
  promoted_words : accum;
  minor_collections : Metric.counter;
  major_collections : Metric.counter;
  compactions : Metric.counter;
  heap_words : Metric.gauge;
  top_heap_words : Metric.gauge;
  allocation_rate : Metric.gauge;
  mutable prev : Gc.stat;
  mutable prev_t : float option;
  mutable samples : int;
}

let feed accum growth =
  if growth > 0. then begin
    let total = accum.carry +. growth in
    let whole = floor total in
    accum.carry <- total -. whole;
    Metric.add accum.counter (int_of_float whole)
  end

let create ?(registry = Registry.default) () =
  let c name = { counter = Registry.counter registry name; carry = 0. } in
  {
    minor_words = c "runtime_minor_words_total";
    major_words = c "runtime_major_words_total";
    promoted_words = c "runtime_promoted_words_total";
    minor_collections = Registry.counter registry "runtime_minor_collections_total";
    major_collections = Registry.counter registry "runtime_major_collections_total";
    compactions = Registry.counter registry "runtime_compactions_total";
    heap_words = Registry.gauge registry "runtime_heap_words";
    top_heap_words = Registry.gauge registry "runtime_top_heap_words";
    allocation_rate = Registry.gauge registry "runtime_allocation_rate_words_per_s";
    prev = Gc.quick_stat ();
    prev_t = None;
    samples = 0;
  }

let sample ?now_s t =
  let now_s = match now_s with Some s -> s | None -> Clock.now_s () in
  let st = Gc.quick_stat () in
  let prev = t.prev in
  feed t.minor_words (st.Gc.minor_words -. prev.Gc.minor_words);
  feed t.major_words (st.Gc.major_words -. prev.Gc.major_words);
  feed t.promoted_words (st.Gc.promoted_words -. prev.Gc.promoted_words);
  let bump c cur prv = if cur > prv then Metric.add c (cur - prv) in
  bump t.minor_collections st.Gc.minor_collections prev.Gc.minor_collections;
  bump t.major_collections st.Gc.major_collections prev.Gc.major_collections;
  bump t.compactions st.Gc.compactions prev.Gc.compactions;
  Metric.set t.heap_words (float_of_int st.Gc.heap_words);
  Metric.set t.top_heap_words (float_of_int st.Gc.top_heap_words);
  (let allocated st =
     st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words
   in
   match t.prev_t with
   | Some prev_t when now_s > prev_t ->
       Metric.set t.allocation_rate
         ((allocated st -. allocated prev) /. (now_s -. prev_t))
   | _ -> ());
  t.prev <- st;
  t.prev_t <- Some now_s;
  t.samples <- t.samples + 1

let samples_taken t = t.samples
