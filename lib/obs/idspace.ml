(* Identity-space observatory: partition-of-unity audit, fragmentation
   analytics and fork/join/retire genealogy over replica id fragments.
   See idspace.mli for the contract. *)

type fragment = string list

(* ------------------------------------------------------------------ *)
(* Partition-of-unity audit                                            *)
(* ------------------------------------------------------------------ *)

type violation =
  | Overlap of { a : string; a_frag : string; b : string; b_frag : string }
  | Leak of { path : string }
  | Malformed of { owner : string; frag : string }

let pp_violation ppf = function
  | Overlap { a; a_frag; b; b_frag } ->
      Format.fprintf ppf "overlap: %s owns %S, %s owns %S" a a_frag b b_frag
  | Leak { path } -> Format.fprintf ppf "leak: no fragment covers %S" path
  | Malformed { owner; frag } ->
      Format.fprintf ppf "malformed: %s holds non-binary fragment %S" owner
        frag

let violation_json = function
  | Overlap { a; a_frag; b; b_frag } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "overlap");
          ("a", Jsonx.String a);
          ("a_frag", Jsonx.String a_frag);
          ("b", Jsonx.String b);
          ("b_frag", Jsonx.String b_frag);
        ]
  | Leak { path } ->
      Jsonx.Obj [ ("kind", Jsonx.String "leak"); ("path", Jsonx.String path) ]
  | Malformed { owner; frag } ->
      Jsonx.Obj
        [
          ("kind", Jsonx.String "malformed");
          ("owner", Jsonx.String owner);
          ("frag", Jsonx.String frag);
        ]

type audit = {
  audited : int;
  audit_fragments : int;
  violations : violation list;
}

(* One trie node per distinct prefix of the inventory.  [leaves] holds
   the (owner, fragment string) pairs whose fragment ends exactly
   here. *)
type trie = {
  mutable leaves : (string * string) list;
  mutable zero : trie option;
  mutable one : trie option;
}

let trie () = { leaves = []; zero = None; one = None }

let is_binary s =
  let ok = ref true in
  String.iter (fun c -> if c <> '0' && c <> '1' then ok := false) s;
  !ok

let insert root owner s =
  let node = ref root in
  String.iter
    (fun c ->
      let next =
        if c = '0' then (
          (match !node.zero with
          | None -> !node.zero <- Some (trie ())
          | Some _ -> ());
          Option.get !node.zero)
        else (
          (match !node.one with
          | None -> !node.one <- Some (trie ())
          | Some _ -> ());
          Option.get !node.one)
      in
      node := next)
    s;
  !node.leaves <- (owner, s) :: !node.leaves

(* First leaf in the subtree, 0-before-1 — the deterministic overlap
   witness below a covering leaf. *)
let rec first_leaf t =
  match List.sort compare t.leaves with
  | l :: _ -> Some l
  | [] -> (
      match t.zero with
      | Some z -> (
          match first_leaf z with Some _ as l -> l | None -> (
            match t.one with Some o -> first_leaf o | None -> None))
      | None -> ( match t.one with Some o -> first_leaf o | None -> None))

let audit_fragments inventory =
  let root = trie () in
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let audited = List.length inventory in
  let nfrags = ref 0 in
  List.iter
    (fun (owner, frag) ->
      List.iter
        (fun s ->
          incr nfrags;
          if is_binary s then insert root owner s
          else push (Malformed { owner; frag = s }))
        frag)
    inventory;
  (* Depth-first walk: a position is either covered exactly once (a
     leaf with no extra leaves above or below it), or it witnesses an
     overlap or a leak. *)
  let rec walk path t =
    match List.sort compare t.leaves with
    | (a, af) :: rest -> (
        (* A leaf covers everything below [path]; any other leaf here
           or deeper overlaps it.  One witness per position. *)
        match rest with
        | (b, bf) :: _ -> push (Overlap { a; a_frag = af; b; b_frag = bf })
        | [] -> (
            let deeper =
              match (t.zero, t.one) with
              | None, None -> None
              | Some z, _ when first_leaf z <> None -> first_leaf z
              | _, Some o -> first_leaf o
              | _ -> None
            in
            match deeper with
            | Some (b, bf) -> push (Overlap { a; a_frag = af; b; b_frag = bf })
            | None -> ()))
    | [] -> (
        match (t.zero, t.one) with
        | None, None -> push (Leak { path })
        | Some z, Some o ->
            walk (path ^ "0") z;
            walk (path ^ "1") o
        | Some z, None ->
            walk (path ^ "0") z;
            push (Leak { path = path ^ "1" })
        | None, Some o ->
            push (Leak { path = path ^ "0" });
            walk (path ^ "1") o)
  in
  walk "" root;
  {
    audited;
    audit_fragments = !nfrags;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Fragmentation analytics                                             *)
(* ------------------------------------------------------------------ *)

(* Minimal external path length of a binary tree with [n] leaves: with
   [k = floor(log2 n)], [2 * (n - 2^k)] leaves sit at depth [k + 1]
   and the rest at depth [k]. *)
let oracle_shape n =
  if n <= 1 then (0, 0, n)
  else begin
    let k = ref 0 in
    while 1 lsl (!k + 1) <= n do incr k done;
    let k = !k in
    let deep = 2 * (n - (1 lsl k)) in
    (k, deep, n - deep)
  end

let oracle_bits n =
  if n <= 1 then 0
  else
    let k, deep, shallow = oracle_shape n in
    (k * shallow) + ((k + 1) * deep)

let oracle_entropy n =
  if n <= 1 then 0.
  else
    let k, deep, shallow = oracle_shape n in
    let cover d = 2. ** float_of_int (-d) in
    (float_of_int shallow *. float_of_int k *. cover k)
    +. (float_of_int deep *. float_of_int (k + 1) *. cover (k + 1))

type stats = {
  live : int;
  fragments : int;
  id_bits : int;
  oracle_bits : int;
  max_depth : int;
  max_width : int;
  mean_width : float;
  entropy : float;
  oracle_entropy : float;
  reduce_effectiveness : float;
  width_dist : (int * int) list;
  depth_dist : (int * int) list;
}

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let dist_of tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let stats_of_fragments inventory =
  let live = List.length inventory in
  let fragments = ref 0 and id_bits = ref 0 in
  let max_depth = ref 0 and max_width = ref 0 in
  let entropy = ref 0. in
  let widths = Hashtbl.create 16 and depths = Hashtbl.create 16 in
  List.iter
    (fun (_, frag) ->
      let w = List.length frag in
      fragments := !fragments + w;
      if w > !max_width then max_width := w;
      bump widths w;
      List.iter
        (fun s ->
          let d = String.length s in
          id_bits := !id_bits + d;
          if d > !max_depth then max_depth := d;
          bump depths d;
          entropy := !entropy +. (2. ** float_of_int (-d) *. float_of_int d))
        frag)
    inventory;
  let ob = oracle_bits live in
  {
    live;
    fragments = !fragments;
    id_bits = !id_bits;
    oracle_bits = ob;
    max_depth = !max_depth;
    max_width = !max_width;
    mean_width =
      (if live = 0 then 0. else float_of_int !fragments /. float_of_int live);
    entropy = !entropy;
    oracle_entropy = oracle_entropy live;
    reduce_effectiveness =
      (if !id_bits = 0 then 1.
       else float_of_int ob /. float_of_int !id_bits);
    width_dist = dist_of widths;
    depth_dist = dist_of depths;
  }

let dist_json d =
  Jsonx.List
    (List.map
       (fun (k, v) -> Jsonx.List [ Jsonx.Int k; Jsonx.Int v ])
       d)

let stats_json s =
  Jsonx.Obj
    [
      ("live", Jsonx.Int s.live);
      ("fragments", Jsonx.Int s.fragments);
      ("id_bits", Jsonx.Int s.id_bits);
      ("oracle_bits", Jsonx.Int s.oracle_bits);
      ("max_depth", Jsonx.Int s.max_depth);
      ("max_width", Jsonx.Int s.max_width);
      ("mean_width", Jsonx.Float s.mean_width);
      ("entropy", Jsonx.Float s.entropy);
      ("oracle_entropy", Jsonx.Float s.oracle_entropy);
      ("reduce_effectiveness", Jsonx.Float s.reduce_effectiveness);
      ("width_dist", dist_json s.width_dist);
      ("depth_dist", dist_json s.depth_dist);
    ]

(* ------------------------------------------------------------------ *)
(* Genealogy inventory                                                 *)
(* ------------------------------------------------------------------ *)

type node_id = int

type via = Seed | Fork | Join | Retire

type node = {
  id : node_id;
  label : string;
  via : via;
  parents : node_id list;
  born : int;
  mutable frag : fragment;
  mutable died : int option;
  mutable refreshes : int;
}

type t = {
  nodes : (node_id, node) Hashtbl.t;
  mutable order : node_id list;  (* newest first *)
  mutable next : node_id;
  mutable seq : int;
  mutable n_seeds : int;
  mutable n_forks : int;
  mutable n_joins : int;
  mutable n_retires : int;
  mutable n_refreshes : int;
  mutable reclaimed : int;
  mutable forked_bits : int;
  (* publication watermarks: counters are only advanced by growth *)
  mutable pub : int array;  (* seeds forks joins retires refreshes reclaimed fork_bits *)
}

let create () =
  {
    nodes = Hashtbl.create 64;
    order = [];
    next = 0;
    seq = 0;
    n_seeds = 0;
    n_forks = 0;
    n_joins = 0;
    n_retires = 0;
    n_refreshes = 0;
    reclaimed = 0;
    forked_bits = 0;
    pub = Array.make 7 0;
  }

let frag_bits frag = List.fold_left (fun acc s -> acc + String.length s) 0 frag

let tick t =
  t.seq <- t.seq + 1;
  t.seq

let add_node t ?label ~via ~parents frag =
  let id = t.next in
  t.next <- id + 1;
  let label = match label with Some l -> l | None -> "n" ^ string_of_int id in
  let n =
    { id; label; via; parents; born = tick t; frag; died = None; refreshes = 0 }
  in
  Hashtbl.replace t.nodes id n;
  t.order <- id :: t.order;
  n

let find t id = Hashtbl.find_opt t.nodes id

let live_node t id =
  match find t id with
  | Some n when n.died = None -> n
  | Some _ -> invalid_arg (Printf.sprintf "Idspace: node %d is not live" id)
  | None -> invalid_arg (Printf.sprintf "Idspace: unknown node %d" id)

let seed ?label t frag =
  let n = add_node t ?label ~via:Seed ~parents:[] frag in
  t.n_seeds <- t.n_seeds + 1;
  n.id

let fork ?labels t parent ~left ~right =
  let p = live_node t parent in
  p.died <- Some (tick t);
  let ll, rl =
    match labels with Some (a, b) -> (Some a, Some b) | None -> (None, None)
  in
  let l = add_node t ?label:ll ~via:Fork ~parents:[ parent ] left in
  let r = add_node t ?label:rl ~via:Fork ~parents:[ parent ] right in
  t.n_forks <- t.n_forks + 1;
  let added = frag_bits left + frag_bits right - frag_bits p.frag in
  if added > 0 then t.forked_bits <- t.forked_bits + added;
  (l.id, r.id)

let join ?label ?(via = Join) t a b frag =
  if a = b then invalid_arg "Idspace.join: parents must be distinct";
  let na = live_node t a in
  let nb = live_node t b in
  let before = frag_bits na.frag + frag_bits nb.frag in
  na.died <- Some (tick t);
  nb.died <- Some (tick t);
  let n = add_node t ?label ~via ~parents:[ a; b ] frag in
  (match via with
  | Retire -> t.n_retires <- t.n_retires + 1
  | _ -> t.n_joins <- t.n_joins + 1);
  let reclaimed = before - frag_bits frag in
  if reclaimed > 0 then t.reclaimed <- t.reclaimed + reclaimed;
  n.id

let retire ?label t ~survivor retiree frag =
  join ?label ~via:Retire t survivor retiree frag

let refresh t id frag =
  let n = live_node t id in
  let dropped = frag_bits n.frag - frag_bits frag in
  if dropped > 0 then t.reclaimed <- t.reclaimed + dropped;
  n.frag <- frag;
  n.refreshes <- n.refreshes + 1;
  t.n_refreshes <- t.n_refreshes + 1

let live t =
  Hashtbl.fold (fun id n acc -> if n.died = None then id :: acc else acc)
    t.nodes []
  |> List.sort compare

let live_count t =
  Hashtbl.fold (fun _ n acc -> if n.died = None then acc + 1 else acc) t.nodes 0

let node_count t = Hashtbl.length t.nodes

let live_inventory t =
  List.map
    (fun id ->
      let n = Hashtbl.find t.nodes id in
      (n.label, n.frag))
    (live t)

let audit t = audit_fragments (live_inventory t)

let stats t = stats_of_fragments (live_inventory t)

let seeds t = t.n_seeds
let forks t = t.n_forks
let joins t = t.n_joins
let retires t = t.n_retires
let refreshes t = t.n_refreshes
let reclaimed_bits t = t.reclaimed
let fork_bits t = t.forked_bits

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let via_string = function
  | Seed -> "seed"
  | Fork -> "fork"
  | Join -> "join"
  | Retire -> "retire"

let dot_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char b '\\'; Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let frag_string frag =
  "{" ^ String.concat "," (List.map (fun s -> if s = "" then "ε" else s) frag)
  ^ "}"

let to_dot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph idspace {\n";
  Buffer.add_string b "  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n";
  let ordered = List.rev t.order in
  List.iter
    (fun id ->
      let n = Hashtbl.find t.nodes id in
      let style =
        if n.died = None then "style=bold,color=darkgreen"
        else "color=gray55,fontcolor=gray40"
      in
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s [%s]\\n%s\",%s];\n" n.id
           (dot_escape n.label) (via_string n.via)
           (dot_escape (frag_string n.frag))
           style))
    ordered;
  List.iter
    (fun id ->
      let n = Hashtbl.find t.nodes id in
      List.iteri
        (fun i p ->
          let attr =
            match n.via with
            | Retire when i = 1 -> " [style=dashed,label=\"retire\"]"
            | _ -> ""
          in
          Buffer.add_string b (Printf.sprintf "  n%d -> n%d%s;\n" p n.id attr))
        n.parents)
    ordered;
  Buffer.add_string b "}\n";
  Buffer.contents b

let node_json n =
  Jsonx.Obj
    [
      ("id", Jsonx.Int n.id);
      ("label", Jsonx.String n.label);
      ("via", Jsonx.String (via_string n.via));
      ("parents", Jsonx.List (List.map (fun p -> Jsonx.Int p) n.parents));
      ("born", Jsonx.Int n.born);
      ( "died",
        match n.died with Some d -> Jsonx.Int d | None -> Jsonx.Null );
      ("frag", Jsonx.List (List.map (fun s -> Jsonx.String s) n.frag));
      ("refreshes", Jsonx.Int n.refreshes);
    ]

let audit_json a =
  Jsonx.Obj
    [
      ("ok", Jsonx.Bool (a.violations = []));
      ("audited", Jsonx.Int a.audited);
      ("fragments", Jsonx.Int a.audit_fragments);
      ("violations", Jsonx.List (List.map violation_json a.violations));
    ]

let ops_json t =
  Jsonx.Obj
    [
      ("seeds", Jsonx.Int t.n_seeds);
      ("forks", Jsonx.Int t.n_forks);
      ("joins", Jsonx.Int t.n_joins);
      ("retires", Jsonx.Int t.n_retires);
      ("refreshes", Jsonx.Int t.n_refreshes);
      ("reclaimed_bits", Jsonx.Int t.reclaimed);
      ("fork_bits", Jsonx.Int t.forked_bits);
    ]

let to_json t =
  let ordered = List.rev t.order in
  Jsonx.Obj
    [
      ("schema", Jsonx.String "vstamp-idspace/1");
      ("stats", stats_json (stats t));
      ("audit", audit_json (audit t));
      ("ops", ops_json t);
      ( "nodes",
        Jsonx.List
          (List.map (fun id -> node_json (Hashtbl.find t.nodes id)) ordered) );
    ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let gauge_names =
  [
    "vstamp_idspace_live_replicas";
    "vstamp_idspace_fragments";
    "vstamp_idspace_id_bits";
    "vstamp_idspace_oracle_bits";
    "vstamp_idspace_entropy";
    "vstamp_idspace_oracle_entropy";
    "vstamp_idspace_max_depth";
    "vstamp_idspace_mean_width";
    "vstamp_idspace_reduce_effectiveness";
    "vstamp_idspace_audit_violations";
    "vstamp_idspace_genealogy_nodes";
  ]

let op_name op = Registry.with_labels "vstamp_idspace_ops_total" [ ("op", op) ]

let publish ?(registry = Registry.default) t =
  let s = stats t in
  let a = audit t in
  let set name v = Metric.set (Registry.gauge registry name) v in
  set "vstamp_idspace_live_replicas" (float_of_int s.live);
  set "vstamp_idspace_fragments" (float_of_int s.fragments);
  set "vstamp_idspace_id_bits" (float_of_int s.id_bits);
  set "vstamp_idspace_oracle_bits" (float_of_int s.oracle_bits);
  set "vstamp_idspace_entropy" s.entropy;
  set "vstamp_idspace_oracle_entropy" s.oracle_entropy;
  set "vstamp_idspace_max_depth" (float_of_int s.max_depth);
  set "vstamp_idspace_mean_width" s.mean_width;
  set "vstamp_idspace_reduce_effectiveness" s.reduce_effectiveness;
  set "vstamp_idspace_audit_violations"
    (float_of_int (List.length a.violations));
  set "vstamp_idspace_genealogy_nodes" (float_of_int (node_count t));
  (* counters accumulate across runs sharing a registry: add growth
     since this inventory's previous publication only *)
  let delta i cur name =
    let d = cur - t.pub.(i) in
    if d > 0 then Metric.add (Registry.counter registry name) d;
    t.pub.(i) <- cur
  in
  delta 0 t.n_seeds (op_name "seed");
  delta 1 t.n_forks (op_name "fork");
  delta 2 t.n_joins (op_name "join");
  delta 3 t.n_retires (op_name "retire");
  delta 4 t.n_refreshes (op_name "refresh");
  delta 5 t.reclaimed "vstamp_idspace_reclaimed_bits_total";
  delta 6 t.forked_bits "vstamp_idspace_fork_bits_total"

let metric_value = function
  | Registry.Counter c -> float_of_int (Metric.count c)
  | Registry.Gauge g -> Metric.value g
  | Registry.Histogram h -> float_of_int (Metric.observations h)

(* ["name{label=\"v\"}"] -> [Some v]; the idspace families carry at
   most the single [op] label. *)
let label_value ~base ~label name =
  let prefix = base ^ "{" ^ label ^ "=\"" in
  let pn = String.length prefix and n = String.length name in
  if
    n > pn + 1
    && String.sub name 0 pn = prefix
    && String.sub name (n - 2) 2 = "\"}"
  then
    match Registry.unescape_label_value (String.sub name pn (n - pn - 2)) with
    | Ok v -> Some v
    | Error _ -> None
  else None

let view_json registry =
  let gauges = ref [] in
  let ops = ref [] in
  let reclaimed = ref Jsonx.Null in
  let forked = ref Jsonx.Null in
  let strip name =
    (* vstamp_idspace_live_replicas -> live_replicas *)
    String.sub name 15 (String.length name - 15)
  in
  List.iter
    (fun (name, metric) ->
      let v = metric_value metric in
      match
        label_value ~base:"vstamp_idspace_ops_total" ~label:"op" name
      with
      | Some op -> ops := (op, Jsonx.Float v) :: !ops
      | None ->
          if name = "vstamp_idspace_reclaimed_bits_total" then
            reclaimed := Jsonx.Float v
          else if name = "vstamp_idspace_fork_bits_total" then
            forked := Jsonx.Float v
          else if List.mem name gauge_names then
            gauges := (strip name, Jsonx.Float v) :: !gauges)
    (Registry.snapshot registry);
  Jsonx.Obj
    [
      ("idspace", Jsonx.Obj (List.rev !gauges));
      ("ops", Jsonx.Obj (List.rev !ops));
      ("reclaimed_bits_total", !reclaimed);
      ("fork_bits_total", !forked);
    ]
