type run = Jsonx.t

let schema_prefix = "vstamp-bench-core/"

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let of_json j =
  match Jsonx.member "schema" j with
  | Some (Jsonx.String s) when has_prefix ~prefix:schema_prefix s -> Ok j
  | Some (Jsonx.String s) ->
      Error (Printf.sprintf "unrecognized bench schema %S" s)
  | Some _ -> Error "bench run: schema field is not a string"
  | None -> Error "bench run: missing schema field"

let read_file file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error m -> Error m

let load ~file =
  match read_file file with
  | Error m -> Error (Printf.sprintf "%s: %s" file m)
  | Ok s -> (
      match Jsonx.of_string (String.trim s) with
      | Error m -> Error (Printf.sprintf "%s: %s" file m)
      | Ok j -> (
          match of_json j with
          | Error m -> Error (Printf.sprintf "%s: %s" file m)
          | Ok run -> Ok run))

let to_json run = run

let schema run =
  match Jsonx.member "schema" run with
  | Some (Jsonx.String s) -> s
  | _ -> assert false (* enforced by [of_json] *)

let git_rev run = Option.bind (Jsonx.member "git_rev" run) Jsonx.to_str

let config run =
  match Jsonx.member "config" run with
  | None -> None
  | Some c ->
      let seed =
        match Jsonx.member "seed" run with
        | Some s -> [ ("seed", s) ]
        | None -> []
      in
      Some (Jsonx.Obj (seed @ [ ("config", c) ]))

(* --- ledger --- *)

let append ~file json =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonx.to_string json);
      output_char oc '\n')

let history ~file =
  match read_file file with
  | Error m -> Error (Printf.sprintf "%s: %s" file m)
  | Ok s ->
      let lines = String.split_on_char '\n' s in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
            if String.trim line = "" then go (lineno + 1) acc rest
            else (
              match Jsonx.of_string line with
              | Ok j -> go (lineno + 1) (j :: acc) rest
              | Error m ->
                  Error (Printf.sprintf "%s:%d: %s" file lineno m))
      in
      go 1 [] lines

(* --- comparison --- *)

type direction = Lower_better | Higher_better

type delta = {
  metric : string;
  baseline : float;
  current : float;
  worse_pct : float;
  direction : direction;
}

let float_field name obj = Option.bind (Jsonx.member name obj) Jsonx.to_float

let scalar_fields ~base ~direction names obj =
  List.filter_map
    (fun name ->
      Option.map
        (fun v -> (base ^ "/" ^ name, v, direction))
        (float_field name obj))
    names

let latency_metrics run =
  match Jsonx.member "op_latency_ns" run with
  | Some (Jsonx.Obj fields) ->
      (* non-numeric values are the /3 {"timed_out": true} markers —
         nothing to compare *)
      List.filter_map
        (fun (name, v) ->
          Option.map
            (fun f -> ("latency/" ^ name, f, Lower_better))
            (Jsonx.to_float v))
        fields
  | _ -> []

let size_metrics run =
  match Jsonx.member "sizes" run with
  | Some (Jsonx.List rows) ->
      List.concat_map
        (fun row ->
          match
            ( Option.bind (Jsonx.member "workload" row) Jsonx.to_str,
              Option.bind (Jsonx.member "n" row) Jsonx.to_int,
              Option.bind (Jsonx.member "tracker" row) Jsonx.to_str )
          with
          | Some w, Some n, Some t ->
              scalar_fields
                ~base:(Printf.sprintf "size/%s/n=%d/%s" w n t)
                ~direction:Lower_better
                [ "mean_bits"; "p95_bits"; "peak_bits" ]
                row
          | _ -> [])
        rows
  | _ -> []

let reduction_metrics run =
  match Jsonx.member "reduction" run with
  | Some (Jsonx.List rows) ->
      List.concat_map
        (fun row ->
          match Option.bind (Jsonx.member "trace" row) Jsonx.to_str with
          | Some trace ->
              let base = "reduction/" ^ trace in
              scalar_fields ~base ~direction:Lower_better
                [ "reduced_bits" ] row
              @ scalar_fields ~base ~direction:Higher_better [ "ratio" ] row
          | None -> [])
        rows
  | _ -> []

let monitor_metrics run =
  match Jsonx.member "monitor_overhead" run with
  | Some (Jsonx.Obj workloads) ->
      List.concat_map
        (fun (w, fields) ->
          scalar_fields ~base:("monitor/" ^ w) ~direction:Lower_better
            [ "monitor_slowdown"; "sampled_slowdown" ]
            fields)
        workloads
  | _ -> []

let convergence_metrics run =
  match Jsonx.member "convergence" run with
  | Some (Jsonx.List rows) ->
      (* schema /5: one row per (severity, tracker) of the E14 lane.
         convergence_ns is wall-clock noise and deliberately not
         extracted; a null convergence_steps (heal budget exhausted)
         simply contributes no metric. *)
      List.concat_map
        (fun row ->
          match
            ( Option.bind (Jsonx.member "severity" row) Jsonx.to_float,
              Option.bind (Jsonx.member "tracker" row) Jsonx.to_str )
          with
          | Some s, Some t ->
              let base = Printf.sprintf "convergence/severity=%g/%s" s t in
              scalar_fields ~base ~direction:Lower_better
                [ "convergence_steps"; "redundant_bytes"; "peak_lag" ]
                row
              @ scalar_fields ~base ~direction:Higher_better
                  [ "sync_delta_efficiency" ] row
          | _ -> [])
        rows
  | _ -> []

let recorder_metrics run =
  match Jsonx.member "recorder" run with
  | Some (Jsonx.Obj _ as obj) ->
      (* schema /6: the E15 flight-recorder lane.  footprint_bytes is a
         deterministic function of the store geometry; the tick costs
         are wall clock. *)
      scalar_fields ~base:"recorder" ~direction:Lower_better
        [ "tick_ns"; "overhead_pct_1s"; "overhead_pct_100ms"; "footprint_bytes" ]
        obj
  | _ -> []

let trace_metrics run =
  match Jsonx.member "trace" run with
  | Some (Jsonx.Obj _ as obj) ->
      (* schema /7: the E16 context-propagation lane.  header_bytes and
         span_json_bytes are deterministic wire/record sizes; the span
         costs are wall clock. *)
      scalar_fields ~base:"trace" ~direction:Lower_better
        [
          "with_span_ns"; "detached_ns"; "remote_span_ns"; "header_bytes";
          "span_json_bytes";
        ]
        obj
  | _ -> []

let idspace_metrics run =
  match Jsonx.member "idspace" run with
  | Some (Jsonx.List rows) ->
      (* schema /8: one row per churn rate of the E17 lane.  Everything
         here is deterministic in the scenario seed: the stamp lane's
         id-digit footprint against the dynamic-VV lane's retired-entry
         baggage. *)
      List.concat_map
        (fun row ->
          match
            Option.bind (Jsonx.member "churn_rate" row) Jsonx.to_float
          with
          | Some rate ->
              let base = Printf.sprintf "idspace/rate=%g" rate in
              scalar_fields ~base ~direction:Lower_better
                [
                  "stamp_id_bits"; "stamp_id_width"; "dvv_retired_entries";
                  "dvv_size_bits";
                ]
                row
              @ scalar_fields ~base ~direction:Higher_better
                  [ "reduce_effectiveness" ] row
          | None -> [])
        rows
  | _ -> []

let net_metrics run =
  match Jsonx.member "net" run with
  | Some (Jsonx.Obj _ as obj) ->
      (* schema /9: the E18 networked anti-entropy lane.  Byte counts
         and round counts are deterministic in the seeded workload;
         convergence_ns is wall-clock noise and deliberately not
         extracted. *)
      scalar_fields ~base:"net" ~direction:Lower_better
        [
          "wire_bytes"; "shipped_bytes"; "redundant_bytes"; "overhead_ratio";
          "rounds_to_convergence"; "protocol_errors";
        ]
        obj
  | _ -> []

let metrics run =
  List.sort
    (fun (a, _, _) (b, _, _) -> compare a b)
    (latency_metrics run @ size_metrics run @ reduction_metrics run
   @ monitor_metrics run @ convergence_metrics run @ recorder_metrics run
   @ trace_metrics run @ idspace_metrics run @ net_metrics run)

let config_compatibility ~baseline ~current =
  match (config baseline, config current) with
  | None, _ | _, None -> `Unknown
  | Some a, Some b ->
      if Jsonx.equal a b then `Same
      else
        `Mismatch
          (Printf.sprintf "baseline %s vs current %s" (Jsonx.to_string a)
             (Jsonx.to_string b))

let worse_pct ~direction ~baseline ~current =
  let towards_worse =
    match direction with
    | Lower_better -> current -. baseline
    | Higher_better -> baseline -. current
  in
  if baseline = 0.0 then
    if towards_worse > 0.0 then infinity
    else if towards_worse < 0.0 then neg_infinity
    else 0.0
  else 100.0 *. towards_worse /. Float.abs baseline

let compare_runs ?(ignore_config = false) ~baseline current =
  match config_compatibility ~baseline ~current with
  | `Mismatch m when not ignore_config ->
      Error
        ("runs have different configurations and are not comparable \
          point for point (pass --ignore-config to override): " ^ m)
  | `Same | `Unknown | `Mismatch _ ->
      let cur = Hashtbl.create 64 in
      List.iter
        (fun (name, v, _) -> Hashtbl.replace cur name v)
        (metrics current);
      Ok
        (List.filter_map
           (fun (metric, baseline, direction) ->
             match Hashtbl.find_opt cur metric with
             | None -> None
             | Some current ->
                 Some
                   {
                     metric;
                     baseline;
                     current;
                     worse_pct = worse_pct ~direction ~baseline ~current;
                     direction;
                   })
           (metrics baseline))

let regressions ~tolerance deltas =
  List.filter (fun d -> d.worse_pct > tolerance) deltas

let improvements ~tolerance deltas =
  List.filter (fun d -> d.worse_pct < -.tolerance) deltas

let pct_string pct =
  if pct = infinity then "+inf%"
  else if pct = neg_infinity then "-inf%"
  else Printf.sprintf "%+.1f%%" pct

let pp_delta_table ?(limit = 20) ppf deltas =
  (* worst first; metric path breaks ties deterministically *)
  let sorted =
    List.sort
      (fun a b ->
        match compare b.worse_pct a.worse_pct with
        | 0 -> compare a.metric b.metric
        | c -> c)
      deltas
  in
  let shown = List.filteri (fun i _ -> i < limit) sorted in
  let width =
    List.fold_left (fun w d -> max w (String.length d.metric)) 6 shown
  in
  Format.fprintf ppf "%-*s %14s %14s %9s@." width "metric" "baseline"
    "current" "change";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-*s %14.6g %14.6g %9s@." width d.metric d.baseline
        d.current (pct_string d.worse_pct))
    shown;
  let elided = List.length sorted - List.length shown in
  if elided > 0 then Format.fprintf ppf "(and %d more)@." elided
