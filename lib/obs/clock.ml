let source = ref Sys.time

let set_source f = source := f

let now_s () = !source ()

let now_ns () = Int64.of_float (!source () *. 1e9)
