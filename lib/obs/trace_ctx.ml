(* Distributed trace contexts.  A context names one position in one
   trace (trace id, span id, node); spans are finished intervals that
   carry the context plus attributes and, crucially, the version-stamp
   label of the data they acted on.  Stamps — not wall clocks — are what
   {!Trace_merge} later uses to causally order spans from different
   nodes, so a span's [stamp] is the bridge between the tracing layer
   and the paper's happens-before oracle.

   The ambient tracer mirrors the [Obs.attach]/[detach] pattern used by
   the sync layers: a process attaches at most one tracer; when none is
   attached every [with_span] is a plain function call. *)

type ctx = { trace_id : string; span_id : string; node : string }

type span = {
  sp_trace : string;
  sp_id : string;
  sp_parent : string option;
  sp_node : string;
  sp_name : string;
  sp_start_ns : int64;
  sp_end_ns : int64;
  sp_domain : string option;
      (* stamp comparison scope: stamps from unrelated seed lineages are
         formally comparable but causally meaningless, so merging only
         compares stamps of spans sharing a domain (and a trace) *)
  sp_stamp : string option;  (* text label of the stamp the span carried *)
  sp_attrs : (string * Jsonx.t) list;
}

(* --- id generation: splitmix64 over a per-process seed --- *)

let id_state = ref 0L

let id_seeded = ref false

let mix_seed n = id_state := Int64.logxor !id_state (Int64.of_int n)

(* Lazy so that a pre-draw [mix_seed] (attach folds the node name in)
   cannot suppress the pid/clock entropy: processes launched in the
   same instant still draw distinct ids. *)
let ensure_seeded () =
  if not !id_seeded then begin
    id_seeded := true;
    mix_seed (Unix.getpid ());
    mix_seed (Hashtbl.hash (Unix.gettimeofday ()))
  end

let set_id_seed n =
  id_state := Int64.of_int n;
  id_seeded := true

let next64 () =
  ensure_seeded ();
  id_state := Int64.add !id_state 0x9E3779B97F4A7C15L;
  let z = !id_state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hex64 v = Printf.sprintf "%016Lx" v

let fresh_span_id () = hex64 (next64 ())

let fresh_trace_id () = hex64 (next64 ()) ^ hex64 (next64 ())

let genesis ?(node = "local") () =
  { trace_id = fresh_trace_id (); span_id = fresh_span_id (); node }

let child c = { c with span_id = fresh_span_id () }

(* --- wire header (the sync-message envelope field) --- *)

let header_prefix = "vstamp-trace/1"

let to_header c =
  String.concat ";" [ header_prefix; c.trace_id; c.span_id; c.node ]

let of_header s =
  match String.split_on_char ';' s with
  | [ p; trace_id; span_id; node ]
    when String.equal p header_prefix && trace_id <> "" && span_id <> "" ->
      Ok { trace_id; span_id; node }
  | p :: _ when not (String.equal p header_prefix) ->
      Error (Printf.sprintf "unrecognized trace header %S" p)
  | _ -> Error "malformed trace header"

(* --- span (de)serialization --- *)

let span_equal a b =
  String.equal a.sp_trace b.sp_trace
  && String.equal a.sp_id b.sp_id
  && a.sp_parent = b.sp_parent
  && String.equal a.sp_node b.sp_node
  && String.equal a.sp_name b.sp_name
  && Int64.equal a.sp_start_ns b.sp_start_ns
  && Int64.equal a.sp_end_ns b.sp_end_ns
  && a.sp_domain = b.sp_domain && a.sp_stamp = b.sp_stamp
  && List.length a.sp_attrs = List.length b.sp_attrs
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Jsonx.equal v1 v2)
       a.sp_attrs b.sp_attrs

let span_to_json s =
  let opt name = function
    | None -> []
    | Some v -> [ (name, Jsonx.String v) ]
  in
  Jsonx.Obj
    ([
       ("trace", Jsonx.String s.sp_trace);
       ("span", Jsonx.String s.sp_id);
     ]
    @ opt "parent" s.sp_parent
    @ [
        ("node", Jsonx.String s.sp_node);
        ("name", Jsonx.String s.sp_name);
        ("start_ns", Jsonx.Int (Int64.to_int s.sp_start_ns));
        ("end_ns", Jsonx.Int (Int64.to_int s.sp_end_ns));
      ]
    @ opt "domain" s.sp_domain @ opt "stamp" s.sp_stamp
    @ match s.sp_attrs with [] -> [] | a -> [ ("attrs", Jsonx.Obj a) ])

let span_of_json json =
  let str name = Option.bind (Jsonx.member name json) Jsonx.to_str in
  let int name = Option.bind (Jsonx.member name json) Jsonx.to_int in
  match (str "trace", str "span", str "node", str "name") with
  | Some sp_trace, Some sp_id, Some sp_node, Some sp_name -> (
      match (int "start_ns", int "end_ns") with
      | Some start_ns, Some end_ns ->
          let sp_attrs =
            match Jsonx.member "attrs" json with
            | Some (Jsonx.Obj fields) -> fields
            | _ -> []
          in
          Ok
            {
              sp_trace;
              sp_id;
              sp_parent = str "parent";
              sp_node;
              sp_name;
              sp_start_ns = Int64.of_int start_ns;
              sp_end_ns = Int64.of_int end_ns;
              sp_domain = str "domain";
              sp_stamp = str "stamp";
              sp_attrs;
            }
      | _ -> Error "span: missing or non-integer start_ns/end_ns")
  | _ -> Error "span: missing trace/span/node/name field"

let span_to_string s = Jsonx.to_string (span_to_json s)

let span_of_string s =
  match Jsonx.of_string s with
  | Error e -> Error e
  | Ok json -> span_of_json json

let spans_to_jsonl spans =
  String.concat "" (List.map (fun s -> span_to_string s ^ "\n") spans)

let spans_of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else (
          match span_of_string line with
          | Ok s -> go (lineno + 1) (s :: acc) rest
          | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  go 1 [] lines

(* --- ambient tracer --- *)

type tracer = {
  t_sink : span -> unit;
  t_node : string;
  t_root : ctx;
  t_spans : Metric.counter option;
  t_mutex : Mutex.t;
}

type frame = {
  f_ctx : ctx;
  f_parent : string;
  f_name : string;
  f_start_ns : int64;
  mutable f_stamp : string option;
  mutable f_domain : string option;
  mutable f_attrs : (string * Jsonx.t) list;
}

let tracer : tracer option ref = ref None

let stack : frame list ref = ref []

let attach ?registry ?(sink = fun _ -> ()) ?(node = "local") ?parent () =
  ensure_seeded ();
  mix_seed (Hashtbl.hash node);
  let root = match parent with Some c -> c | None -> genesis ~node () in
  tracer :=
    Some
      {
        t_sink = sink;
        t_node = node;
        t_root = root;
        t_spans =
          Option.map (fun reg -> Registry.counter reg "trace_spans_total")
            registry;
        t_mutex = Mutex.create ();
      };
  stack := []

let detach () =
  tracer := None;
  stack := []

let attached () = Option.is_some !tracer

let node () = match !tracer with Some t -> t.t_node | None -> "local"

let root () = Option.map (fun t -> t.t_root) !tracer

let current () =
  match !tracer with
  | None -> None
  | Some t -> (
      match !stack with fr :: _ -> Some fr.f_ctx | [] -> Some t.t_root)

let emit t span =
  Mutex.lock t.t_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.t_mutex)
    (fun () ->
      t.t_sink span;
      match t.t_spans with Some c -> Metric.inc c | None -> ())

let run_span t ~parent ?stamp ?domain ?(attrs = []) name f =
  let ctx =
    {
      trace_id = parent.trace_id;
      span_id = fresh_span_id ();
      node = t.t_node;
    }
  in
  let frame =
    {
      f_ctx = ctx;
      f_parent = parent.span_id;
      f_name = name;
      f_start_ns = Clock.now_ns ();
      f_stamp = stamp;
      f_domain = domain;
      f_attrs = attrs;
    }
  in
  stack := frame :: !stack;
  let finish () =
    (match !stack with
    | fr :: rest when fr == frame -> stack := rest
    | _ -> stack := List.filter (fun fr -> fr != frame) !stack);
    emit t
      {
        sp_trace = ctx.trace_id;
        sp_id = ctx.span_id;
        sp_parent = Some frame.f_parent;
        sp_node = t.t_node;
        sp_name = frame.f_name;
        sp_start_ns = frame.f_start_ns;
        sp_end_ns = Clock.now_ns ();
        sp_domain = frame.f_domain;
        sp_stamp = frame.f_stamp;
        sp_attrs = frame.f_attrs;
      }
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      frame.f_attrs <- frame.f_attrs @ [ ("error", Jsonx.Bool true) ];
      finish ();
      raise e

let with_span ?stamp ?domain ?attrs name f =
  match !tracer with
  | None -> f ()
  | Some t ->
      let parent =
        match !stack with fr :: _ -> fr.f_ctx | [] -> t.t_root
      in
      run_span t ~parent ?stamp ?domain ?attrs name f

(* The receiving half of a propagated context: the caller hands over the
   wire header its peer sent and the new span becomes a child of the
   remote span, continuing the remote trace.  An unparseable header
   degrades to a local span rather than dropping instrumentation. *)
let with_remote_span ~header ?stamp ?domain ?(attrs = []) name f =
  match !tracer with
  | None -> f ()
  | Some t -> (
      match of_header header with
      | Ok remote ->
          let attrs = attrs @ [ ("peer", Jsonx.String remote.node) ] in
          run_span t ~parent:remote ?stamp ?domain ~attrs name f
      | Error _ ->
          let parent =
            match !stack with fr :: _ -> fr.f_ctx | [] -> t.t_root
          in
          run_span t ~parent ?stamp ?domain ~attrs name f)

let annotate fields =
  match !stack with
  | fr :: _ -> fr.f_attrs <- fr.f_attrs @ fields
  | [] -> ()

let set_stamp ?domain label =
  match !stack with
  | fr :: _ ->
      fr.f_stamp <- Some label;
      (match domain with Some _ -> fr.f_domain <- domain | None -> ())
  | [] -> ()
