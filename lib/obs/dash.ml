let clear_screen = "\x1b[H\x1b[2J"

let style color code s =
  if color then Printf.sprintf "\x1b[%sm%s\x1b[0m" code s else s

let bold c = style c "1"

let dim c = style c "2"

let yellow c = style c "33"

let red c = style c "31"

let cyan c = style c "36"

(* 12345678 -> "12.3M": the dashboard favours glanceability over
   digits; exact values are one /stats.json away. *)
let human f =
  let a = Float.abs f in
  if a >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if a >= 1e4 then Printf.sprintf "%.1fk" (f /. 1e3)
  else if Float.is_integer f then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.2f" f

let truncate_line width s =
  if String.length s <= width then s
  else String.sub s 0 (max 0 (width - 1)) ^ "…"

let header_line color health =
  let field name =
    Option.bind health (fun h -> Jsonx.member name h)
  in
  let status =
    match Option.bind (field "status") Jsonx.to_str with
    | Some s -> s
    | None -> "-"
  in
  let num name =
    match Option.bind (field name) Jsonx.to_float with
    | Some f -> human f
    | None -> "-"
  in
  let status_str =
    if status = "ok" then bold color status else red color status
  in
  Printf.sprintf "%s · status %s · up %ss · %s events · %s violations"
    (bold color "vstamp top")
    status_str (num "uptime_s") (num "events_total")
    (num "invariant_violations")

let section color title = Printf.sprintf "%s" (cyan color ("── " ^ title))

let rates_rows ~max_rows deltas =
  let monotone =
    List.filter
      (fun d -> d.Registry.kind <> Registry.Kgauge)
      deltas
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare b.Registry.rate a.Registry.rate)
      monotone
  in
  List.filteri (fun i _ -> i < max_rows) sorted

let gauge_rows ~max_rows deltas =
  let gauges =
    List.filter (fun d -> d.Registry.kind = Registry.Kgauge) deltas
  in
  List.filteri (fun i _ -> i < max_rows) gauges

(* The convergence-observatory families get their own panel: they are
   the signals a partition-weather soak is run to watch, and burying
   them among the other gauges defeats the glance. *)
let divergence_name name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let has_suffix s =
    let n = String.length name and m = String.length s in
    n >= m && String.sub name (n - m) m = s
  in
  has_prefix "vstamp_replica_lag" || has_prefix "vstamp_divergence_"
  || has_prefix "vstamp_frontier_width"
  || has_prefix "vstamp_convergence_"
  || has_suffix "_delta_efficiency"

let divergence_rows ~max_rows snapshot =
  let fields = match snapshot with Jsonx.Obj kvs -> kvs | _ -> [] in
  List.filter_map
    (fun (name, v) ->
      if divergence_name name then
        Option.map (fun f -> (name, f)) (Jsonx.to_float v)
      else None)
    fields
  |> List.filteri (fun i _ -> i < max_rows)

(* The identity-space families likewise: a churn soak is run to watch
   fragmentation and reclamation, so they get their own panel. *)
let idspace_name name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "vstamp_idspace_" || has_prefix "sim_churn_"

let idspace_rows ~max_rows snapshot =
  let fields = match snapshot with Jsonx.Obj kvs -> kvs | _ -> [] in
  List.filter_map
    (fun (name, v) ->
      if idspace_name name then
        Option.map (fun f -> (name, f)) (Jsonx.to_float v)
      else None)
    fields
  |> List.filteri (fun i _ -> i < max_rows)

let histogram_rows ~max_rows snapshot =
  let fields = match snapshot with Jsonx.Obj kvs -> kvs | _ -> [] in
  List.filter_map
    (fun (name, v) ->
      match v with
      | Jsonx.Obj _ -> (
          let get k = Option.bind (Jsonx.member k v) Jsonx.to_float in
          match (get "count", get "mean", get "p95", get "max") with
          | Some n, Some mean, Some p95, Some mx ->
              Some (name, n, mean, p95, mx)
          | _ -> None)
      | _ -> None)
    fields
  |> List.filteri (fun i _ -> i < max_rows)

(* Eight-level unicode sparkline.  A flat series renders mid-height so
   "no movement" is visibly distinct from "no data". *)
let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline ?width values =
  let values = List.filter Float.is_finite values in
  let values =
    match width with
    | Some w when w > 0 && List.length values > w ->
        (* keep the newest [w] values *)
        let len = List.length values in
        List.filteri (fun i _ -> i >= len - w) values
    | _ -> values
  in
  match values with
  | [] -> ""
  | vs ->
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      let buf = Buffer.create (3 * List.length vs) in
      List.iter
        (fun v ->
          let level =
            if hi <= lo then 3
            else
              Stdlib.min 7
                (int_of_float ((v -. lo) /. (hi -. lo) *. 8.))
          in
          Buffer.add_string buf spark_levels.(level))
        vs;
      Buffer.contents buf

(* One row per /range.json series: name, sparkline over the bucket
   averages, and the most recent value. *)
let spark_rows ~max_rows sparks =
  List.filter_map
    (fun (name, values) ->
      match List.filter Float.is_finite values with
      | [] -> None
      | vs -> Some (name, vs))
    sparks
  |> List.filteri (fun i _ -> i < max_rows)

let alert_rows alerts =
  match Jsonx.member "rules" alerts with
  | Some (Jsonx.List rules) ->
      List.filter_map
        (fun r ->
          let str k = Option.bind (Jsonx.member k r) Jsonx.to_str in
          match (str "name", str "state") with
          | Some name, Some state ->
              let spec = Option.value ~default:"" (str "rule") in
              let value = Option.bind (Jsonx.member "value" r) Jsonx.to_float in
              Some (name, state, spec, value)
          | _ -> None)
        rules
  | _ -> []

let render ?(color = true) ?(max_rows = 12) ?(width = 100) ?(events = [])
    ?health ?alerts ?(sparks = []) ~deltas ~snapshot () =
  let buf = Buffer.create 2048 in
  let line s = Buffer.add_string buf (truncate_line width s ^ "\n") in
  let raw_line s = Buffer.add_string buf (s ^ "\n") in
  raw_line (header_line color health);
  (match Option.map alert_rows alerts with
  | None | Some [] -> ()
  | Some rows ->
      raw_line (section color "alerts");
      List.iter
        (fun (name, state, spec, value) ->
          let mark, state_str =
            match state with
            | "firing" -> (red color "●", red color "firing  ")
            | "pending" -> (yellow color "●", yellow color "pending ")
            | _ -> (dim color "○", dim color "inactive")
          in
          let value_str =
            match value with Some v -> " = " ^ human v | None -> ""
          in
          (* the state dot is multi-byte and the row carries ANSI
             styling; skip byte-truncation *)
          raw_line
            (Printf.sprintf "  %s %-20s %s %s%s" mark
               (truncate_line 20 name) state_str
               (dim color spec) value_str))
        rows);
  let name_w =
    List.fold_left
      (fun acc d -> max acc (String.length d.Registry.name))
      24 deltas
    |> min (width - 26)
  in
  (match rates_rows ~max_rows deltas with
  | [] -> ()
  | rows ->
      raw_line (section color "rates (counters, per second)");
      List.iter
        (fun d ->
          let mark = if d.Registry.reset then yellow color " ↻reset" else "" in
          let rate_str =
            let s = Printf.sprintf "%8s/s" (human d.Registry.rate) in
            if d.Registry.rate = 0.0 then dim color s else s
          in
          line
            (Printf.sprintf "  %-*s %10s %s%s" name_w
               (truncate_line name_w d.Registry.name)
               (human d.Registry.value)
               rate_str mark))
        rows);
  (match gauge_rows ~max_rows deltas with
  | [] -> ()
  | rows ->
      raw_line (section color "gauges");
      List.iter
        (fun d ->
          let ch =
            if d.Registry.change = 0.0 then dim color "        ="
            else
              Printf.sprintf "%9s"
                ((if d.Registry.change > 0.0 then "+" else "")
                ^ human d.Registry.change)
          in
          line
            (Printf.sprintf "  %-*s %10s %s" name_w
               (truncate_line name_w d.Registry.name)
               (human d.Registry.value)
               ch))
        rows);
  (match divergence_rows ~max_rows snapshot with
  | [] -> ()
  | rows ->
      raw_line (section color "divergence (replica lag, pairs, convergence)");
      List.iter
        (fun (name, v) ->
          line
            (Printf.sprintf "  %-*s %10s" name_w (truncate_line name_w name)
               (human v)))
        rows);
  (match idspace_rows ~max_rows snapshot with
  | [] -> ()
  | rows ->
      raw_line (section color "identity space (fragments, bits, churn)");
      List.iter
        (fun (name, v) ->
          line
            (Printf.sprintf "  %-*s %10s" name_w (truncate_line name_w name)
               (human v)))
        rows);
  (match spark_rows ~max_rows sparks with
  | [] -> ()
  | rows ->
      raw_line (section color "history (flight recorder)");
      let spark_w = max 8 (width - name_w - 16) in
      List.iter
        (fun (name, values) ->
          let last = List.nth values (List.length values - 1) in
          (* sparkline glyphs are multi-byte; byte-truncation would cut
             a codepoint in half, so this row manages its own width *)
          raw_line
            (Printf.sprintf "  %-*s %s %10s" name_w
               (truncate_line name_w name)
               (sparkline ~width:spark_w values)
               (human last)))
        rows);
  (match histogram_rows ~max_rows snapshot with
  | [] -> ()
  | rows ->
      raw_line (section color "histograms (n / mean / p95 / max)");
      List.iter
        (fun (name, n, mean, p95, mx) ->
          line
            (Printf.sprintf "  %-*s %8s %9s %9s %9s" name_w
               (truncate_line name_w name)
               (human n) (human mean) (human p95) (human mx)))
        rows);
  (match events with
  | [] -> ()
  | events ->
      raw_line (section color "events (newest last)");
      let tail =
        let len = List.length events in
        if len > max_rows then
          List.filteri (fun i _ -> i >= len - max_rows) events
        else events
      in
      List.iter (fun e -> line (dim color ("  " ^ e))) tail);
  Buffer.contents buf

(* One row of the cluster panel, from a /cluster.json "nodes" entry.
   A down node shows its scrape error instead of health numbers. *)
let cluster_node_row color width node =
  let str k = Option.bind (Jsonx.member k node) Jsonx.to_str in
  let id = Option.value ~default:"?" (str "id") in
  let port =
    match Option.bind (Jsonx.member "port" node) Jsonx.to_int with
    | Some p -> string_of_int p
    | None -> "-"
  in
  let up =
    match Option.bind (Jsonx.member "up" node) Jsonx.to_bool with
    | Some b -> b
    | None -> false
  in
  if not up then
    let err = Option.value ~default:"unreachable" (str "error") in
    Printf.sprintf "  %s %-12s %-6s %s" (red color "●")
      (truncate_line 12 id) port
      (red color (truncate_line (max 0 (width - 30)) err))
  else
    let health = Jsonx.member "health" node in
    let hfield k = Option.bind health (fun h -> Jsonx.member k h) in
    let hnum k =
      match Option.bind (hfield k) Jsonx.to_float with
      | Some f -> human f
      | None -> "-"
    in
    let status =
      Option.value ~default:"-" (Option.bind (hfield "status") Jsonx.to_str)
    in
    let firing =
      match Option.bind (Jsonx.member "alerts_firing" node) Jsonx.to_int with
      | Some 0 | None -> dim color "0"
      | Some n -> red color (string_of_int n)
    in
    let status_str =
      if status = "ok" then status else red color status
    in
    Printf.sprintf "  %s %-12s %-6s %-8s %8s %9s %9s %9s  %s"
      (style color "32" "●")
      (truncate_line 12 id) port status_str (hnum "uptime_s")
      (hnum "iterations") (hnum "events_total") (hnum "requests_total")
      firing

let render_cluster ?(color = true) ?(width = 100) cluster =
  let buf = Buffer.create 1024 in
  let raw_line s = Buffer.add_string buf (s ^ "\n") in
  let num k =
    match Option.bind (Jsonx.member k cluster) Jsonx.to_int with
    | Some n -> string_of_int n
    | None -> "-"
  in
  let firing =
    match Option.bind (Jsonx.member "alerts_firing" cluster) Jsonx.to_int with
    | Some 0 | None -> dim color "0 firing"
    | Some n -> red color (string_of_int n ^ " firing")
  in
  raw_line
    (Printf.sprintf "%s · %s/%s nodes up · %s"
       (bold color "vstamp cluster")
       (num "nodes_up") (num "nodes_total") firing);
  (match Jsonx.member "trace" cluster with
  | Some (Jsonx.String t) -> raw_line (dim color ("  trace " ^ t))
  | _ -> ());
  raw_line (section color "nodes");
  raw_line
    (dim color
       (Printf.sprintf "  %s %-12s %-6s %-8s %8s %9s %9s %9s  %s" " "
          "node" "port" "status" "up(s)" "iters" "events" "reqs" "alerts"));
  (match Jsonx.member "nodes" cluster with
  | Some (Jsonx.List nodes) ->
      List.iter (fun n -> raw_line (cluster_node_row color width n)) nodes
  | _ -> raw_line (dim color "  (no nodes)"));
  Buffer.contents buf
