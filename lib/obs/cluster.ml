(* Federation: one scrape of every node's telemetry endpoints, rolled
   up into a single /cluster.json document.  This is pure client code
   over {!Http_export.Client}, so the same roll-up serves the
   multi-process soak driver (behind a parent [Http_export] with a
   [?cluster] callback) and in-process tests that stand up two servers
   and federate them. *)

type node = { id : string; host : string; port : int }

let schema = "vstamp-cluster/1"

let get_json ?timeout_s ~host ~port path =
  match Http_export.Client.get ?timeout_s ~host ~port path with
  | Error m -> Error m
  | Ok (200, body) -> (
      match Jsonx.of_string (String.trim body) with
      | Ok j -> Ok j
      | Error m -> Error (Printf.sprintf "%s: %s" path m))
  | Ok (status, _) -> Error (Printf.sprintf "%s: HTTP %d" path status)

let node_json ?timeout_s n =
  let base =
    [
      ("id", Jsonx.String n.id);
      ("host", Jsonx.String n.host);
      ("port", Jsonx.Int n.port);
    ]
  in
  match get_json ?timeout_s ~host:n.host ~port:n.port "/healthz" with
  | Error m ->
      (Jsonx.Obj
         (base @ [ ("up", Jsonx.Bool false); ("error", Jsonx.String m) ]),
       false,
       0)
  | Ok health ->
      (* a node without an alert engine answers 404 — that is absence,
         not failure *)
      let alerts =
        match get_json ?timeout_s ~host:n.host ~port:n.port "/alerts.json" with
        | Ok j -> j
        | Error _ -> Jsonx.Null
      in
      let firing =
        match Option.bind (Jsonx.member "firing" alerts) Jsonx.to_int with
        | Some k -> k
        | None -> 0
      in
      let stats =
        match get_json ?timeout_s ~host:n.host ~port:n.port "/stats.json" with
        | Ok j -> j
        | Error _ -> Jsonx.Null
      in
      ( Jsonx.Obj
          (base
          @ [
              ("up", Jsonx.Bool true);
              ("alerts_firing", Jsonx.Int firing);
              ("health", health);
              ("alerts", alerts);
              ("stats", stats);
            ]),
        true,
        firing )

let collect ?timeout_s ?(meta = []) nodes =
  let rows = List.map (node_json ?timeout_s) nodes in
  let up = List.length (List.filter (fun (_, u, _) -> u) rows) in
  let firing = List.fold_left (fun acc (_, _, f) -> acc + f) 0 rows in
  Jsonx.Obj
    ([
       ("schema", Jsonx.String schema);
       ("collected_s", Jsonx.Float (Clock.now_s ()));
       ("nodes_total", Jsonx.Int (List.length nodes));
       ("nodes_up", Jsonx.Int up);
       ("alerts_firing", Jsonx.Int firing);
     ]
    @ meta
    @ [ ("nodes", Jsonx.List (List.map (fun (j, _, _) -> j) rows)) ])
