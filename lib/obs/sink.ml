type t = {
  write : Event.t -> unit;
  finish : unit -> unit;
  buffer : Event.t list ref option;
  mutable n : int;
}

let null = { write = ignore; finish = ignore; buffer = None; n = 0 }

let memory () =
  let buf = ref [] in
  {
    write = (fun e -> buf := e :: !buf);
    finish = ignore;
    buffer = Some buf;
    n = 0;
  }

let contents t = match t.buffer with Some buf -> List.rev !buf | None -> []

let of_channel ?(flush_each = false) oc =
  {
    write =
      (fun e ->
        output_string oc (Event.to_string e);
        output_char oc '\n';
        if flush_each then flush oc);
    finish = (fun () -> flush oc);
    buffer = None;
    n = 0;
  }

let to_file path =
  let oc = open_out path in
  {
    write =
      (fun e ->
        output_string oc (Event.to_string e);
        output_char oc '\n');
    finish = (fun () -> close_out oc);
    buffer = None;
    n = 0;
  }

let emit t e =
  t.n <- t.n + 1;
  t.write e

let emitted t = t.n

let close t = t.finish ()
