type t = {
  write : Event.t -> unit;
  flush_now : unit -> unit;
  finish : unit -> unit;
  buffer : Event.t list ref option;
  mutable n : int;
}

let null =
  { write = ignore; flush_now = ignore; finish = ignore; buffer = None; n = 0 }

let memory () =
  let buf = ref [] in
  {
    write = (fun e -> buf := e :: !buf);
    flush_now = ignore;
    finish = ignore;
    buffer = Some buf;
    n = 0;
  }

let contents t = match t.buffer with Some buf -> List.rev !buf | None -> []

let of_channel ?(flush_each = false) oc =
  {
    write =
      (fun e ->
        output_string oc (Event.to_string e);
        output_char oc '\n';
        if flush_each then flush oc);
    flush_now = (fun () -> flush oc);
    finish = (fun () -> flush oc);
    buffer = None;
    n = 0;
  }

let to_file ?(fsync = true) path =
  let oc = open_out path in
  let closed = ref false in
  (* Push buffered lines to the OS and — when asked — to the disk, so a
     run cut short by a signal or an uncaught exception does not leave
     the JSONL truncated mid-line. *)
  let flush_now () =
    if not !closed then begin
      flush oc;
      if fsync then
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ()
    end
  in
  at_exit (fun () -> try flush_now () with Sys_error _ -> ());
  {
    write =
      (fun e ->
        output_string oc (Event.to_string e);
        output_char oc '\n');
    flush_now;
    finish =
      (fun () ->
        if not !closed then begin
          flush_now ();
          closed := true;
          close_out_noerr oc
        end);
    buffer = None;
    n = 0;
  }

let emit t e =
  t.n <- t.n + 1;
  t.write e

let tee a b =
  {
    write =
      (fun e ->
        emit a e;
        emit b e);
    flush_now =
      (fun () ->
        a.flush_now ();
        b.flush_now ());
    finish =
      (fun () ->
        a.finish ();
        b.finish ());
    buffer = None;
    n = 0;
  }

let of_fn write =
  { write; flush_now = ignore; finish = ignore; buffer = None; n = 0 }

let emitted t = t.n

let flush t = t.flush_now ()

let close t = t.finish ()
