(** The time source behind every span and timer.

    The library itself has no dependencies, so the default source is
    [Sys.time] (processor seconds) — adequate for single-threaded
    latency spans.  Executables that link [unix] can inject a better
    source with {!set_source} (e.g. [Unix.gettimeofday]).  Tests can
    inject a fake clock. *)

val set_source : (unit -> float) -> unit
(** Replace the time source; the function must return seconds as a
    monotonically non-decreasing float. *)

val now_s : unit -> float
(** Current time of the active source, in seconds. *)

val now_ns : unit -> int64
(** Current time of the active source, in integer nanoseconds. *)
