(** Distributed trace contexts and spans.

    A {!ctx} names one position in one trace: a trace id shared by
    every span of a distributed operation, a span id for this
    position, and the node that holds it.  Contexts cross process
    boundaries as one-line text headers ({!to_header} /
    {!of_header}) carried inside sync messages, so the remote half of
    a synchronization continues the same trace.

    A {!span} is a finished interval.  Besides the usual parent link
    and attributes it can carry the text label of the version stamp
    the work acted on; {!Trace_merge} orders spans from different
    nodes by those stamps (the paper's happens-before oracle) rather
    than by wall clocks.

    The ambient tracer follows the [attach]/[detach] idiom of the sync
    layers' [Obs] modules: when no tracer is attached, {!with_span}
    is a plain function call. *)

type ctx = { trace_id : string; span_id : string; node : string }

type span = {
  sp_trace : string;
  sp_id : string;
  sp_parent : string option;
  sp_node : string;
  sp_name : string;
  sp_start_ns : int64;
  sp_end_ns : int64;
  sp_domain : string option;
      (** stamp-comparison scope: merging compares the stamps of two
          spans only when they share a trace and a domain, because
          stamps from unrelated seed lineages are formally comparable
          but causally meaningless *)
  sp_stamp : string option;  (** text label of the stamp carried *)
  sp_attrs : (string * Jsonx.t) list;
}

(** {1 Contexts and propagation} *)

val set_id_seed : int -> unit
(** Make id generation deterministic (tests).  By default ids are
    seeded from the pid and the clock, so concurrently launched
    processes draw distinct ids. *)

val genesis : ?node:string -> unit -> ctx
(** A fresh root context starting a new trace. *)

val child : ctx -> ctx
(** Same trace and node, fresh span id. *)

val to_header : ctx -> string
(** Serialize for a message envelope: ["vstamp-trace/1;TRACE;SPAN;NODE"]. *)

val of_header : string -> (ctx, string) result
(** Parse what {!to_header} produced.  [of_header (to_header c) = Ok c]. *)

(** {1 Span (de)serialization} *)

val span_equal : span -> span -> bool

val span_to_json : span -> Jsonx.t

val span_of_json : Jsonx.t -> (span, string) result

val span_to_string : span -> string

val span_of_string : string -> (span, string) result

val spans_to_jsonl : span list -> string
(** One span per line; the span-log file format. *)

val spans_of_jsonl : string -> (span list, string) result
(** Inverse of {!spans_to_jsonl}; blank lines are skipped. *)

(** {1 The ambient tracer} *)

val attach :
  ?registry:Registry.t ->
  ?sink:(span -> unit) ->
  ?node:string ->
  ?parent:ctx ->
  unit ->
  unit
(** Install the process tracer.  [sink] receives every finished span
    (e.g. a JSONL file writer); [node] names this process in span
    records (default ["local"]); [parent] continues a propagated trace
    — top-level spans become its children — and defaults to a fresh
    {!genesis} root.  With [registry], finished spans tick a
    [trace_spans_total] counter. *)

val detach : unit -> unit

val attached : unit -> bool

val node : unit -> string
(** The attached tracer's node name, or ["local"]. *)

val root : unit -> ctx option
(** The root context of the attached tracer. *)

val current : unit -> ctx option
(** The innermost active span's context (the root context when no span
    is active), or [None] when detached.  This is what gets
    {!to_header}-ed into an outgoing sync message. *)

val with_span :
  ?stamp:string ->
  ?domain:string ->
  ?attrs:(string * Jsonx.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a fresh child span of the
    current context and records it when [f] returns (or raises — the
    span then carries [error: true]).  No-op wrapper when detached. *)

val with_remote_span :
  header:string ->
  ?stamp:string ->
  ?domain:string ->
  ?attrs:(string * Jsonx.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** The receiving half of a propagated context: parse [header] (a
    {!to_header} envelope field) and run [f] in a span that is a child
    of the remote span, continuing the remote trace; a [peer]
    attribute records the sender's node.  Unparseable headers degrade
    to {!with_span} behavior. *)

val annotate : (string * Jsonx.t) list -> unit
(** Append attributes to the innermost active span (no-op outside one). *)

val set_stamp : ?domain:string -> string -> unit
(** Set the stamp label (and optionally the comparison domain) of the
    innermost active span. *)
