(** Latency spans over the {!Clock} source, recorded into a registry
    histogram of nanoseconds under the span's name. *)

type t

val start : ?registry:Registry.t -> string -> t

val stop : t -> int64
(** Record the elapsed time into the span's histogram and return it in
    nanoseconds. *)

val time : ?registry:Registry.t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the duration is recorded even if the
    thunk raises. *)

val record : ?registry:Registry.t -> string -> int64 -> unit
(** Record an externally measured duration (nanoseconds). *)
