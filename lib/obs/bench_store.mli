(** Benchmark run ledger and regression comparison.

    A {e run} is one parsed [BENCH_core.json] document (schema
    [vstamp-bench-core/1..3]).  This module turns two runs into a flat
    list of named, direction-annotated metrics (operation latencies,
    tracking-data sizes, reduction efficacy, monitor overheads),
    computes relative deltas, and classifies regressions against a
    tolerance — the engine behind [vstamp bench diff] and
    [vstamp bench check].

    Runs made under different configurations (different seed, bechamel
    iteration budget, workload scale lists — the [config] block of
    schema /3) are not comparable point for point, so {!compare_runs}
    refuses them unless explicitly overridden; runs that predate the
    [config] block (schema /1, /2) compare with compatibility
    [`Unknown].

    The ledger side ({!append} / {!history}) is an append-only JSONL
    file — one run per line, newest last — so the bench trajectory
    accumulates across commits instead of being overwritten. *)

type run

val of_json : Jsonx.t -> (run, string) result
(** Accepts any object carrying a [schema] string field of the
    [vstamp-bench-core/N] family. *)

val load : file:string -> (run, string) result

val to_json : run -> Jsonx.t

val schema : run -> string

val git_rev : run -> string option

val config : run -> Jsonx.t option
(** The [config] block plus the top-level [seed] — everything that must
    match for two runs to be comparable.  [None] before schema /3. *)

(** {1 Ledger} *)

val append : file:string -> Jsonx.t -> unit
(** Append one run as a single JSONL line, creating the file if
    needed. *)

val history : file:string -> (Jsonx.t list, string) result
(** All ledger entries, oldest first.  Blank lines are tolerated; a
    malformed line is an error naming its line number. *)

(** {1 Comparison} *)

type direction =
  | Lower_better  (** Latencies, sizes, slowdowns. *)
  | Higher_better  (** Reduction ratios, throughputs. *)

type delta = {
  metric : string;
  baseline : float;
  current : float;
  worse_pct : float;
      (** Relative change towards {e worse}, in percent: positive means
          the current run regressed, negative means it improved.
          [infinity] when a zero baseline became non-zero (in the bad
          direction). *)
  direction : direction;
}

val metrics : run -> (string * float * direction) list
(** Every comparable scalar of the run, as [metric-path, value,
    direction], sorted by path.  Latency entries recorded as timed out
    (schema /3 [{"timed_out": true}]) are omitted.  From the schema /5
    [convergence] block only the deterministic fields are extracted
    (steps, bytes, efficiency) — never the wall-clock
    [convergence_ns]. *)

val config_compatibility :
  baseline:run -> current:run -> [ `Same | `Unknown | `Mismatch of string ]

val compare_runs :
  ?ignore_config:bool -> baseline:run -> run -> (delta list, string) result
(** [compare_runs ~baseline current]: deltas over the metrics present
    in both runs, sorted by metric path.  Errors on a config mismatch
    unless [ignore_config] (default [false]); [`Unknown] compatibility
    is allowed. *)

val regressions : tolerance:float -> delta list -> delta list
(** Deltas with [worse_pct > tolerance] (tolerance in percent). *)

val improvements : tolerance:float -> delta list -> delta list
(** Deltas with [worse_pct < -. tolerance]. *)

val pp_delta_table : ?limit:int -> Format.formatter -> delta list -> unit
(** Aligned table, worst first, capped at [limit] rows (default 20),
    with a summary line counting what was elided. *)
