(** Cluster federation: scrape every node's telemetry endpoints and
    roll them up into one /cluster.json document.

    Pure client code over {!Http_export.Client}: the multi-process
    soak driver serves {!collect}'s result behind a parent
    {!Http_export} (its [?cluster] callback), and tests can federate
    in-process servers the same way. *)

type node = { id : string; host : string; port : int }

val schema : string
(** ["vstamp-cluster/1"]. *)

val collect :
  ?timeout_s:float -> ?meta:(string * Jsonx.t) list -> node list -> Jsonx.t
(** One federation pass.  Per node: [/healthz] (its failure marks the
    node down, with the error recorded), [/alerts.json] and
    [/stats.json] (absence tolerated).  The roll-up carries
    [nodes_total] / [nodes_up] / [alerts_firing] summaries, any
    [meta] fields (e.g. the cluster trace id), and the per-node
    documents under ["nodes"]. *)
