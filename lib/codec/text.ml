open Vstamp_core

type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "at offset %d: %s" e.position e.message

let err position message = Error { position; message }

(* The notation is the paper's: a stamp is "[u|i]"; a name is "ø" (empty),
   or "+"-separated binary strings where the empty string may be written
   as the epsilon glyph (U+03B5) or "e".  Whitespace is allowed around
   tokens. *)

let epsilon_utf8 = "\xce\xb5"

let empty_utf8 = "\xc3\xb8"

let is_space c = c = ' ' || c = '\t'

let skip_spaces s pos =
  let n = String.length s in
  let rec go p = if p < n && is_space s.[p] then go (p + 1) else p in
  go pos

let looking_at s pos token =
  let n = String.length token in
  pos + n <= String.length s && String.sub s pos n = token

(* one name member: a run of 0/1, or an epsilon spelling *)
let parse_member s pos =
  if looking_at s pos epsilon_utf8 then Ok (Bits.epsilon, pos + 2)
  else if looking_at s pos "e" then Ok (Bits.epsilon, pos + 1)
  else
    let n = String.length s in
    let rec go p = if p < n && (s.[p] = '0' || s.[p] = '1') then go (p + 1) else p in
    let stop = go pos in
    if stop = pos then err pos "expected a binary string, 'e' or epsilon"
    else Ok (Bits.of_string (String.sub s pos (stop - pos)), stop)

module type CODEC = sig
  type name

  type stamp

  val name_of_string : string -> (name, error) result

  val name_to_string : name -> string

  val stamp_of_string : string -> (stamp, error) result

  val stamp_to_string : stamp -> string
end

module Make (B : Backend.S) = struct
  type name = B.Name.t

  type stamp = B.Stamp.t

  let parse_name s pos =
    let pos = skip_spaces s pos in
    if looking_at s pos empty_utf8 then Ok (B.Name.empty, pos + 2)
    else if looking_at s pos "0/" then Ok (B.Name.empty, pos + 2)
    else
      let rec members pos acc =
        match parse_member s pos with
        | Error e -> Error e
        | Ok (m, pos) ->
            let pos' = skip_spaces s pos in
            if looking_at s pos' "+" then
              members (skip_spaces s (pos' + 1)) (m :: acc)
            else Ok (List.rev (m :: acc), pos)
      in
      match members pos [] with
      | Error e -> Error e
      | Ok (ms, pos) ->
          let name = B.Name.of_list ms in
          if B.Name.cardinal name <> List.length ms then
            err pos "not an antichain: a member is a prefix of another"
          else Ok (name, pos)

  let name_of_string s =
    match parse_name s 0 with
    | Error e -> Error e
    | Ok (n, pos) ->
        let pos = skip_spaces s pos in
        if pos = String.length s then Ok n else err pos "trailing input"

  let parse_stamp s pos =
    let pos = skip_spaces s pos in
    if not (looking_at s pos "[") then err pos "expected '['"
    else
      match parse_name s (pos + 1) with
      | Error e -> Error e
      | Ok (u, pos) ->
          let pos = skip_spaces s pos in
          if not (looking_at s pos "|") then err pos "expected '|'"
          else (
            match parse_name s (pos + 1) with
            | Error e -> Error e
            | Ok (i, pos) ->
                let pos = skip_spaces s pos in
                if not (looking_at s pos "]") then err pos "expected ']'"
                else
                  let stamp = B.Stamp.make_unchecked ~update:u ~id:i in
                  if B.Stamp.well_formed stamp then Ok (stamp, pos + 1)
                  else err pos "update component not dominated by id (I1)")

  let stamp_of_string s =
    match parse_stamp s 0 with
    | Error e -> Error e
    | Ok (stamp, pos) ->
        let pos = skip_spaces s pos in
        if pos = String.length s then Ok stamp else err pos "trailing input"

  let stamp_to_string = B.Stamp.to_string

  let name_to_string = B.Name.to_string
end

include Make (Backend.Over_tree)
