exception Truncated

module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int;  (* bits accumulated, most recent in low positions *)
    mutable used : int;  (* how many bits of [acc] are filled *)
    mutable total : int;
  }

  let create () = { buf = Buffer.create 64; acc = 0; used = 0; total = 0 }

  let bit w b =
    w.acc <- (w.acc lsl 1) lor (if b then 1 else 0);
    w.used <- w.used + 1;
    w.total <- w.total + 1;
    if w.used = 8 then begin
      Buffer.add_char w.buf (Char.chr w.acc);
      w.acc <- 0;
      w.used <- 0
    end

  let bits w ~value ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Writer.bits: width";
    if value < 0 then invalid_arg "Bitio.Writer.bits: negative value";
    for i = width - 1 downto 0 do
      bit w ((value lsr i) land 1 = 1)
    done

  (* unsigned varint, 4-bit groups with a continuation bit: small numbers
     (the common case for counters and ids) cost 5 bits *)
  let varint w n =
    if n < 0 then invalid_arg "Bitio.Writer.varint: negative";
    let rec go n =
      if n < 16 then begin
        bit w false;
        bits w ~value:n ~width:4
      end
      else begin
        bit w true;
        bits w ~value:(n land 15) ~width:4;
        go (n lsr 4)
      end
    in
    go n

  let bit_length w = w.total

  let contents w =
    let tail =
      if w.used = 0 then ""
      else String.make 1 (Char.chr (w.acc lsl (8 - w.used)))
    in
    Buffer.contents w.buf ^ tail
end

module Reader = struct
  type t = { data : string; mutable pos : int (* in bits *) }

  let of_string data = { data; pos = 0 }

  let remaining_bits r = (String.length r.data * 8) - r.pos

  let bit r =
    if r.pos >= String.length r.data * 8 then raise Truncated;
    let byte = Char.code r.data.[r.pos / 8] in
    let b = (byte lsr (7 - (r.pos mod 8))) land 1 = 1 in
    r.pos <- r.pos + 1;
    b

  let bits r ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Reader.bits: width";
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if bit r then 1 else 0)
    done;
    !v

  let varint r =
    let rec go shift acc =
      if shift > 60 then raise Truncated;
      let continues = bit r in
      let group = bits r ~width:4 in
      let acc = acc lor (group lsl shift) in
      if continues then go (shift + 4) acc else acc
    in
    go 0 0

  let bits_consumed r = r.pos
end

let round_trip_bits n =
  let w = Writer.create () in
  Writer.varint w n;
  Writer.bit_length w
