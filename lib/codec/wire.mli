(** Compact binary wire format for stamps, names and version vectors.

    Names serialize as their canonical trie with a prefix-free code
    (1 bit per interior node, 2 per leaf), so the encoding is
    self-delimiting and one-to-one with antichains: decode of encode is
    the identity and re-encoding a decoded value is byte-identical.
    A stamp is its two names back to back.  Version vectors serialize as
    varint (id, counter) pairs for the size comparison of experiment
    E7. *)

type error =
  | Truncated  (** Input ended mid-value. *)
  | Malformed of string  (** Structurally invalid (bad trie or broken I1). *)

val pp_error : Format.formatter -> error -> unit

(** {1 Names} *)

val name_to_string : Vstamp_core.Name_tree.t -> string

val name_of_string : string -> (Vstamp_core.Name_tree.t, error) result

val name_bits : Vstamp_core.Name_tree.t -> int
(** Exact encoded size in bits (before byte padding). *)

(** {1 Stamps} *)

val stamp_to_string : Vstamp_core.Stamp.t -> string

val stamp_of_string :
  ?validate:bool -> string -> (Vstamp_core.Stamp.t, error) result
(** [validate] (default [true]) rejects stamps violating invariant I1. *)

val stamp_bits : Vstamp_core.Stamp.t -> int

(** {1 Version vectors} *)

val vv_to_string : Vstamp_vv.Version_vector.t -> string

val vv_of_string : string -> (Vstamp_vv.Version_vector.t, error) result

val vv_bits : Vstamp_vv.Version_vector.t -> int
