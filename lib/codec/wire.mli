(** Compact binary wire format for stamps, names and version vectors.

    Names serialize as their canonical trie with a prefix-free code
    (1 bit per interior node, 2 per leaf), so the encoding is
    self-delimiting and one-to-one with antichains: decode of encode is
    the identity and re-encoding a decoded value is byte-identical.
    A stamp is its two names back to back.  Version vectors serialize as
    varint (id, counter) pairs for the size comparison of experiment
    E7.

    The codec is generic in the name backend: {!Make} builds it for any
    registered {!Vstamp_core.Backend.S}, and because the trie is derived
    from the {e antichain} (not the in-memory shape), two backends
    holding the same name produce byte-identical output.  The top-level
    functions are {!Make} applied to the default tree backend. *)

type error =
  | Truncated  (** Input ended mid-value. *)
  | Malformed of string  (** Structurally invalid (bad trie or broken I1). *)

val pp_error : Format.formatter -> error -> unit

(** Output signature of {!Make}. *)
module type CODEC = sig
  type name

  type stamp

  (** {1 Names} *)

  val name_to_string : name -> string

  val name_of_string : string -> (name, error) result

  val name_bits : name -> int
  (** Exact encoded size in bits (before byte padding). *)

  (** {1 Stamps} *)

  val stamp_to_string : stamp -> string

  val stamp_of_string : ?validate:bool -> string -> (stamp, error) result
  (** [validate] (default [true]) rejects stamps violating invariant I1. *)

  val stamp_bits : stamp -> int
end

module Make (B : Vstamp_core.Backend.S) :
  CODEC with type name = B.Name.t and type stamp = B.Stamp.t
(** The wire codec over any name backend. *)

include
  CODEC
    with type name = Vstamp_core.Stamp.name
     and type stamp = Vstamp_core.Stamp.t
(** The default-backend codec. *)

(** {1 Version vectors} *)

val vv_to_string : Vstamp_vv.Version_vector.t -> string

val vv_of_string : string -> (Vstamp_vv.Version_vector.t, error) result

val vv_bits : Vstamp_vv.Version_vector.t -> int
