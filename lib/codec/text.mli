(** Parser and printer for the paper's textual stamp notation.

    Stamps print and parse as [[u|i]] where each component is either the
    empty-set glyph (or ["0/"]) or a [+]-separated list of binary strings;
    the empty string may be spelled ["e"] or with the epsilon glyph.
    Examples accepted: [[e|e]], [[1|01+1]], [[0/|0]],
    [[ 1 | 00 + 01 + 1 ]].

    Parsing validates antichain-ness of each component and invariant I1
    across them, so every parsed stamp is well-formed. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val name_of_string : string -> (Vstamp_core.Name_tree.t, error) result
(** Parse one name, consuming the whole input. *)

val name_to_string : Vstamp_core.Name_tree.t -> string

val stamp_of_string : string -> (Vstamp_core.Stamp.t, error) result
(** Parse one stamp, consuming the whole input. *)

val stamp_to_string : Vstamp_core.Stamp.t -> string
(** Same output as {!Vstamp_core.Stamp.to_string}; round-trips through
    {!stamp_of_string}. *)
