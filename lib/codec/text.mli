(** Parser and printer for the paper's textual stamp notation.

    Stamps print and parse as [[u|i]] where each component is either the
    empty-set glyph (or ["0/"]) or a [+]-separated list of binary strings;
    the empty string may be spelled ["e"] or with the epsilon glyph.
    Examples accepted: [[e|e]], [[1|01+1]], [[0/|0]],
    [[ 1 | 00 + 01 + 1 ]].

    Parsing validates antichain-ness of each component and invariant I1
    across them, so every parsed stamp is well-formed.

    Like {!Wire}, the codec is generic in the name backend: {!Make}
    builds it for any {!Vstamp_core.Backend.S}; the top-level functions
    are the default (tree) instantiation. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Output signature of {!Make}. *)
module type CODEC = sig
  type name

  type stamp

  val name_of_string : string -> (name, error) result
  (** Parse one name, consuming the whole input. *)

  val name_to_string : name -> string

  val stamp_of_string : string -> (stamp, error) result
  (** Parse one stamp, consuming the whole input. *)

  val stamp_to_string : stamp -> string
  (** Same output as the backend's [Stamp.to_string]; round-trips
      through {!stamp_of_string}. *)
end

module Make (B : Vstamp_core.Backend.S) :
  CODEC with type name = B.Name.t and type stamp = B.Stamp.t
(** The text codec over any name backend. *)

include
  CODEC
    with type name = Vstamp_core.Stamp.name
     and type stamp = Vstamp_core.Stamp.t
(** The default-backend codec. *)
