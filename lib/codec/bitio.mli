(** Bit-level readers and writers for the wire codecs.

    Bits are packed most-significant-first within bytes; the final byte of
    a writer's output is zero-padded.  Readers raise {!Truncated} when
    asked for bits past the end — decoders translate that into a typed
    error. *)

exception Truncated

module Writer : sig
  type t

  val create : unit -> t

  val bit : t -> bool -> unit

  val bits : t -> value:int -> width:int -> unit
  (** Write [value]'s low [width] bits, most significant first.
      @raise Invalid_argument on negative values or width outside
      [0, 62]. *)

  val varint : t -> int -> unit
  (** Unsigned variable-length integer in 5-bit groups (continuation bit
      plus 4 payload bits): values below 16 cost 5 bits.
      @raise Invalid_argument on negatives. *)

  val bit_length : t -> int
  (** Exact number of bits written so far (before padding). *)

  val contents : t -> string
  (** The packed bytes, last byte zero-padded. *)
end

module Reader : sig
  type t

  val of_string : string -> t

  val remaining_bits : t -> int

  val bit : t -> bool
  (** @raise Truncated at end of input. *)

  val bits : t -> width:int -> int
  (** @raise Truncated at end of input. *)

  val varint : t -> int
  (** @raise Truncated at end of input or on an overlong encoding. *)

  val bits_consumed : t -> int
end

val round_trip_bits : int -> int
(** Encoded size in bits of one varint — for size accounting. *)
