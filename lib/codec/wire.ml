open Vstamp_core

type error =
  | Truncated
  | Malformed of string

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated input"
  | Malformed what -> Format.fprintf ppf "malformed input: %s" what

(* Name tries are prefix-free self-delimiting:
     1        -> Node, followed by the left then right subtree
     0 0      -> Empty
     0 1      -> Mark
   This is the canonical-form advantage of the trie representation: the
   encoding is one-to-one with antichains and costs 2 bits per leaf and
   1 per interior node. *)
let rec write_name w (n : Name_tree.t) =
  match n with
  | Name_tree.Empty ->
      Bitio.Writer.bit w false;
      Bitio.Writer.bit w false
  | Name_tree.Mark ->
      Bitio.Writer.bit w false;
      Bitio.Writer.bit w true
  | Name_tree.Node (l, r) ->
      Bitio.Writer.bit w true;
      write_name w l;
      write_name w r

let rec read_name r =
  if Bitio.Reader.bit r then begin
    let l = read_name r in
    let right = read_name r in
    if l = Name_tree.Empty && right = Name_tree.Empty then
      failwith "node with two empty children"
    else Name_tree.Node (l, right)
  end
  else if Bitio.Reader.bit r then Name_tree.Mark
  else Name_tree.Empty

let name_to_string n =
  let w = Bitio.Writer.create () in
  write_name w n;
  Bitio.Writer.contents w

let name_bits n =
  let w = Bitio.Writer.create () in
  write_name w n;
  Bitio.Writer.bit_length w

let name_of_string s =
  match
    let r = Bitio.Reader.of_string s in
    read_name r
  with
  | n when Name_tree.well_formed n -> Ok n
  | _ -> Error (Malformed "ill-formed name")
  | exception Bitio.Truncated -> Error Truncated
  | exception Failure _ -> Error (Malformed "node with two empty children")

let write_stamp w s =
  write_name w (Stamp.update_name s);
  write_name w (Stamp.id s)

let read_stamp r =
  let u = read_name r in
  let i = read_name r in
  (u, i)

let stamp_to_string s =
  let w = Bitio.Writer.create () in
  write_stamp w s;
  let bytes = Bitio.Writer.contents w in
  if !Instr.enabled then Instr.note_wire_encode ~bytes:(String.length bytes);
  bytes

let stamp_bits s =
  let w = Bitio.Writer.create () in
  write_stamp w s;
  Bitio.Writer.bit_length w

let stamp_of_string ?(validate = true) data =
  match
    let r = Bitio.Reader.of_string data in
    read_stamp r
  with
  | exception Bitio.Truncated -> Error Truncated
  | exception Failure _ -> Error (Malformed "node with two empty children")
  | u, i ->
      let s = Stamp.make_unchecked ~update:u ~id:i in
      if (not validate) || Stamp.well_formed s then begin
        if !Instr.enabled then
          Instr.note_wire_decode ~bytes:(String.length data);
        Ok s
      end
      else Error (Malformed "update component not dominated by id (I1)")

(* Version vectors on the wire: entry count, then (id, counter) varint
   pairs.  Used by the E7 size comparison. *)
let write_vv w vv =
  let entries = Vstamp_vv.Version_vector.to_list vv in
  Bitio.Writer.varint w (List.length entries);
  List.iter
    (fun (id, c) ->
      Bitio.Writer.varint w id;
      Bitio.Writer.varint w c)
    entries

let read_vv r =
  let count = Bitio.Reader.varint r in
  if count > 1 lsl 20 then raise Bitio.Truncated;
  let entries =
    List.init count (fun _ ->
        let id = Bitio.Reader.varint r in
        let c = Bitio.Reader.varint r in
        (id, c))
  in
  Vstamp_vv.Version_vector.of_list entries

let vv_to_string vv =
  let w = Bitio.Writer.create () in
  write_vv w vv;
  Bitio.Writer.contents w

let vv_bits vv =
  let w = Bitio.Writer.create () in
  write_vv w vv;
  Bitio.Writer.bit_length w

let vv_of_string data =
  match
    let r = Bitio.Reader.of_string data in
    read_vv r
  with
  | vv -> Ok vv
  | exception Bitio.Truncated -> Error Truncated
