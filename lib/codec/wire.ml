open Vstamp_core

type error =
  | Truncated
  | Malformed of string

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated input"
  | Malformed what -> Format.fprintf ppf "malformed input: %s" what

(* Names serialize through a local canonical trie, rebuilt from the
   member list of whichever backend the functor is applied to:
     1        -> Node, followed by the left then right subtree
     0 0      -> Empty
     0 1      -> Mark
   The trie of an antichain is unique (it is the prefix tree of the
   members with no [Node (Empty, Empty)]), so the encoding is one-to-one
   with antichains regardless of the in-memory representation: two
   backends holding the same name produce byte-identical output, and the
   bytes match the historical format (which wrote {!Name_tree}'s
   structure directly — that structure {e is} this trie). *)

type trie = Empty | Mark | Node of trie * trie

(* Members must be an antichain; epsilon can then only appear alone. *)
let rec trie_of_members = function
  | [] -> Empty
  | [ s ] when Bits.is_epsilon s -> Mark
  | members ->
      let zeros, ones =
        List.fold_left
          (fun (zs, os) s ->
            match Bits.uncons s with
            | Some (Bits.Zero, rest) -> (rest :: zs, os)
            | Some (Bits.One, rest) -> (zs, rest :: os)
            | None -> (zs, os))
          ([], []) members
      in
      Node (trie_of_members (List.rev zeros), trie_of_members (List.rev ones))

let rec members_of_trie path acc = function
  | Empty -> acc
  | Mark -> Bits.of_digits (List.rev path) :: acc
  | Node (l, r) ->
      let acc = members_of_trie (Bits.Zero :: path) acc l in
      members_of_trie (Bits.One :: path) acc r

let rec write_trie w = function
  | Empty ->
      Bitio.Writer.bit w false;
      Bitio.Writer.bit w false
  | Mark ->
      Bitio.Writer.bit w false;
      Bitio.Writer.bit w true
  | Node (l, r) ->
      Bitio.Writer.bit w true;
      write_trie w l;
      write_trie w r

let rec read_trie r =
  if Bitio.Reader.bit r then begin
    let l = read_trie r in
    let right = read_trie r in
    if l = Empty && right = Empty then failwith "node with two empty children"
    else Node (l, right)
  end
  else if Bitio.Reader.bit r then Mark
  else Empty

module type CODEC = sig
  type name

  type stamp

  val name_to_string : name -> string

  val name_of_string : string -> (name, error) result

  val name_bits : name -> int

  val stamp_to_string : stamp -> string

  val stamp_of_string : ?validate:bool -> string -> (stamp, error) result

  val stamp_bits : stamp -> int
end

module Make (B : Backend.S) = struct
  type name = B.Name.t

  type stamp = B.Stamp.t

  let write_name w n = write_trie w (trie_of_members (B.Name.to_list n))

  let read_name r = B.Name.of_list (members_of_trie [] [] (read_trie r))

  let name_to_string n =
    let w = Bitio.Writer.create () in
    write_name w n;
    Bitio.Writer.contents w

  let name_bits n =
    let w = Bitio.Writer.create () in
    write_name w n;
    Bitio.Writer.bit_length w

  let name_of_string s =
    match
      let r = Bitio.Reader.of_string s in
      read_name r
    with
    | n when B.Name.well_formed n -> Ok n
    | _ -> Error (Malformed "ill-formed name")
    | exception Bitio.Truncated -> Error Truncated
    | exception Failure _ -> Error (Malformed "node with two empty children")

  let write_stamp w s =
    write_name w (B.Stamp.update_name s);
    write_name w (B.Stamp.id s)

  let read_stamp r =
    let u = read_name r in
    let i = read_name r in
    (u, i)

  let stamp_to_string s =
    let w = Bitio.Writer.create () in
    write_stamp w s;
    let bytes = Bitio.Writer.contents w in
    if !Instr.enabled then Instr.note_wire_encode ~bytes:(String.length bytes);
    bytes

  let stamp_bits s =
    let w = Bitio.Writer.create () in
    write_stamp w s;
    Bitio.Writer.bit_length w

  let stamp_of_string ?(validate = true) data =
    match
      let r = Bitio.Reader.of_string data in
      read_stamp r
    with
    | exception Bitio.Truncated -> Error Truncated
    | exception Failure _ -> Error (Malformed "node with two empty children")
    | u, i ->
        let s = B.Stamp.make_unchecked ~update:u ~id:i in
        if (not validate) || B.Stamp.well_formed s then begin
          if !Instr.enabled then
            Instr.note_wire_decode ~bytes:(String.length data);
          Ok s
        end
        else Error (Malformed "update component not dominated by id (I1)")
end

include Make (Backend.Over_tree)

(* Version vectors on the wire: entry count, then (id, counter) varint
   pairs.  Used by the E7 size comparison. *)
let write_vv w vv =
  let entries = Vstamp_vv.Version_vector.to_list vv in
  Bitio.Writer.varint w (List.length entries);
  List.iter
    (fun (id, c) ->
      Bitio.Writer.varint w id;
      Bitio.Writer.varint w c)
    entries

let read_vv r =
  let count = Bitio.Reader.varint r in
  if count > 1 lsl 20 then raise Bitio.Truncated;
  let entries =
    List.init count (fun _ ->
        let id = Bitio.Reader.varint r in
        let c = Bitio.Reader.varint r in
        (id, c))
  in
  Vstamp_vv.Version_vector.of_list entries

let vv_to_string vv =
  let w = Bitio.Writer.create () in
  write_vv w vv;
  Bitio.Writer.contents w

let vv_bits vv =
  let w = Bitio.Writer.create () in
  write_vv w vv;
  Bitio.Writer.bit_length w

let vv_of_string data =
  match
    let r = Bitio.Reader.of_string data in
    read_vv r
  with
  | vv -> Ok vv
  | exception Bitio.Truncated -> Error Truncated
