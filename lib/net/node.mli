(** A networked [vstamp] node: a {!Vstamp_kvs.Stamped_kv} replica served
    over the [vstamp-sync/1] framed protocol on loopback/LAN TCP.

    One node owns one store, one listening socket with a responder
    thread per accepted connection, and (optionally) one dial thread
    per configured peer running periodic anti-entropy rounds with
    exponential reconnect backoff.  A round is the engine session split
    across the wire — Offer (frontier) → Want → Items → Result — so a
    pair of nodes converges to stores byte-identical to an in-process
    [Stamped_kv.sync].

    Metric families bound into the node's registry: [net_rounds_total],
    [net_tx_bytes_total], [net_rx_bytes_total],
    [net_protocol_errors_total], [net_reconnects_total],
    [net_peers_connected], [net_store_keys], [net_store_digest], plus
    the [net_sync_*] delta-ledger family ({!Vstamp_sync.Ledger}). *)

val initial_backoff_s : float
(** First reconnect delay: [0.2]s, doubling per failure. *)

val max_backoff_s : float
(** Reconnect delay cap: [5.0]s. *)

module Make (B : Vstamp_core.Backend.S) : sig
  module KV : module type of Vstamp_kvs.Stamped_kv.Make (B.Stamp)

  type t

  val create :
    ?registry:Vstamp_obs.Registry.t ->
    ?interval_s:float ->
    ?idle_timeout_s:float ->
    ?addr:string ->
    node_id:string ->
    backend:string ->
    port:int ->
    peers:(string * int) list ->
    unit ->
    t
  (** Bind and listen on [addr:port] ([port = 0] picks an ephemeral
      port — see {!port}) and start the accept thread.  [interval_s]
      (default 1s) spaces the periodic rounds of {!start_dialers};
      [idle_timeout_s] (default 60s) bounds how long a blocked read may
      pin a connection thread.  [backend] is the stamp-backend key
      advertised in the handshake (informational: the wire encoding is
      canonical across backends).
      @raise Unix.Unix_error when the bind fails. *)

  val start_dialers : t -> unit
  (** Launch one periodic anti-entropy thread per configured peer
      (connect → handshake → a round every [interval_s]; on failure,
      reconnect with exponential backoff).  Separate from {!create} so
      a node can instead be driven deterministically by {!sync_now}. *)

  val sync_now : t -> int
  (** One synchronous anti-entropy round against every configured peer
      over a dedicated connection; returns how many peers completed the
      round.  Usable with or without {!start_dialers}. *)

  val port : t -> int
  (** The port actually bound (resolves [port = 0]). *)

  val put : t -> key:string -> string -> unit
  (** Local write into the node's store (thread-safe). *)

  val get : t -> string -> string list

  val keys : t -> string list

  val digest : t -> int
  (** Fingerprint of the observable store content (keys and sorted
      candidate sets, stamps excluded): replicas that have converged
      report equal digests.  Exported as the [net_store_digest] gauge. *)

  val peers_json : t -> Vstamp_obs.Jsonx.t
  (** The [/peers.json] snapshot: node identity, bound port, store
      summary, and per-peer [state]/[attempts]/[rounds]/[backoff_s]/
      [last_error]. *)

  val stop : t -> unit
  (** Stop accepting, join the accept/dial/connection threads, close
      the listening socket.  Idempotent. *)
end
