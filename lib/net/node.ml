open Vstamp_core
module Ledger = Vstamp_sync.Ledger
module R = Vstamp_obs.Registry
module M = Vstamp_obs.Metric
module J = Vstamp_obs.Jsonx
module Tr = Vstamp_obs.Trace_ctx

let initial_backoff_s = 0.2

let max_backoff_s = 5.0

module Make (B : Backend.S) = struct
  module KV = Vstamp_kvs.Stamped_kv.Make (B.Stamp)
  module C = Vstamp_codec.Wire.Make (B)

  type metrics = {
    ledger : Ledger.counters;  (* net_sync_{rounds,shipped,...} *)
    rounds : M.counter;  (* net_rounds_total: initiated rounds done *)
    tx : M.counter;  (* net_tx_bytes_total *)
    rx : M.counter;  (* net_rx_bytes_total *)
    proto_errors : M.counter;  (* net_protocol_errors_total *)
    reconnects : M.counter;  (* net_reconnects_total *)
    peers_connected : M.gauge;  (* net_peers_connected *)
    store_keys : M.gauge;  (* net_store_keys *)
    store_digest : M.gauge;  (* net_store_digest *)
  }

  let metrics registry =
    {
      ledger = Ledger.counters ~registry ~prefix:"net_sync_" ();
      rounds = R.counter registry "net_rounds_total";
      tx = R.counter registry "net_tx_bytes_total";
      rx = R.counter registry "net_rx_bytes_total";
      proto_errors = R.counter registry "net_protocol_errors_total";
      reconnects = R.counter registry "net_reconnects_total";
      peers_connected = R.gauge registry "net_peers_connected";
      store_keys = R.gauge registry "net_store_keys";
      store_digest = R.gauge registry "net_store_digest";
    }

  type peer_state =
    | Idle  (* not yet dialed *)
    | Connecting
    | Connected
    | Backoff of float  (* current retry delay *)

  type peer = {
    p_host : string;
    p_port : int;
    mutable p_state : peer_state;
    mutable p_node_id : string option;  (* learned from the handshake *)
    mutable p_attempts : int;  (* consecutive failed dials *)
    mutable p_rounds : int;  (* completed rounds on this link *)
    mutable p_last_error : string option;
  }

  type t = {
    node_id : string;
    backend : string;
    interval_s : float;
    idle_timeout_s : float;
    m : metrics;
    mutex : Mutex.t;
    mutable store : KV.t;
    mutable stopping : bool;
    listen_fd : Unix.file_descr;
    bound_addr : Unix.sockaddr;
    bound_port : int;
    peers : peer list;
    mutable accept_thread : Thread.t option;
    mutable dial_threads : Thread.t list;
    mutable conn_threads : (int * (Thread.t * Unix.file_descr)) list;
  }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* The observable-content fingerprint: every replica that holds the
     same keys with the same candidate sets reports the same digest,
     whatever its stamps look like — this is what the convergence
     assertions of the smoke test and E18 compare across nodes. *)
  let content_digest store =
    Hashtbl.hash
      (List.map
         (fun k -> (k, List.sort compare (KV.get store k)))
         (KV.keys store))

  let refresh_store_gauges t =
    M.set t.m.store_keys (float_of_int (List.length (KV.keys t.store)));
    M.set t.m.store_digest (float_of_int (content_digest t.store))

  let refresh_peer_gauge t =
    let n =
      List.length
        (List.filter (fun p -> p.p_state = Connected) t.peers)
    in
    M.set t.m.peers_connected (float_of_int n)

  (* --- store access --- *)

  let put t ~key value =
    locked t (fun () ->
        t.store <- KV.put t.store ~key value;
        refresh_store_gauges t)

  let get t key = locked t (fun () -> KV.get t.store key)

  let keys t = locked t (fun () -> KV.keys t.store)

  let digest t = locked t (fun () -> content_digest t.store)

  let port t = t.bound_port

  (* --- wire helpers --- *)

  let send t fd msg =
    match Frame.write fd (Proto.encode msg) with
    | Ok n ->
        M.add t.m.tx n;
        Ok ()
    | Error e -> Error (Format.asprintf "%a" Frame.pp_error e)

  (* [Ok None] is a clean EOF.  Torn and oversized frames are protocol
     errors; so is a frame that does not decode. *)
  let recv t fd =
    match Frame.read fd with
    | Ok None -> Ok None
    | Error (Frame.Truncated | Frame.Oversized _) as e ->
        M.inc t.m.proto_errors;
        (match e with
        | Error err -> Error (Format.asprintf "%a" Frame.pp_error err)
        | Ok _ -> assert false)
    | Error (Frame.Io m) -> Error m
    | Ok (Some (payload, n)) -> (
        M.add t.m.rx n;
        match Proto.decode payload with
        | Ok msg -> Ok (Some msg)
        | Error m ->
            M.inc t.m.proto_errors;
            Error m)

  let hello t = { Proto.node_id = t.node_id; backend = t.backend; proto = Proto.version }

  let decode_stamp s =
    match C.stamp_of_string s with
    | Ok st -> Ok st
    | Error e -> Error (Format.asprintf "bad stamp: %a" Vstamp_codec.Wire.pp_error e)

  let decode_frontier fs =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (key, stamp, digest) :: rest -> (
          match decode_stamp stamp with
          | Ok st -> go ((key, st, digest) :: acc) rest
          | Error _ as e -> e)
    in
    go [] fs

  let decode_delta es =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (key, stamp, values) :: rest -> (
          match decode_stamp stamp with
          | Ok st -> go ((key, st, values) :: acc) rest
          | Error _ as e -> e)
    in
    go [] es

  let encode_frontier fs =
    List.map (fun (key, st, digest) -> (key, C.stamp_to_string st, digest)) fs

  let encode_delta es =
    List.map (fun (key, st, values) -> (key, C.stamp_to_string st, values)) es

  (* --- responder: one thread per accepted connection --- *)

  (* A responder session: expect Hello, ack it, then serve Offer/Items
     pairs until Bye, EOF, idle timeout or an error.  All store
     mutation happens inside one lock-held reconcile, so a session is
     atomic with respect to local puts and other sessions. *)
  let serve_connection t fd =
    let proto_fail m =
      M.inc t.m.proto_errors;
      Error m
    in
    let handshake () =
      match recv t fd with
      | Ok (Some (Proto.Hello h)) ->
          if h.Proto.proto <> Proto.version then
            proto_fail
              (Printf.sprintf "protocol version mismatch: theirs %d, ours %d"
                 h.Proto.proto Proto.version)
          else (
            (* backend mismatch is fine: the wire codec is canonical,
               so stamps decode identically whatever shape the peer
               keeps them in *)
            match send t fd (Proto.Hello_ack (hello t)) with
            | Ok () -> Ok ()
            | Error _ as e -> e)
      | Ok (Some _) -> proto_fail "expected Hello"
      | Ok None -> Error "closed before handshake"
      | Error _ as e -> e
    in
    let reconcile_round header frontier items =
      let apply () =
        locked t (fun () ->
            let tally = Ledger.create () in
            let store, results =
              KV.reconcile ~tally t.store frontier items
            in
            t.store <- store;
            Ledger.round t.m.ledger;
            Ledger.account t.m.ledger ~shipped:tally.Ledger.shipped
              ~minimal:tally.Ledger.minimal;
            refresh_store_gauges t;
            results)
      in
      if String.length header > 0 && Tr.attached () then
        Tr.with_remote_span ~header
          ~attrs:[ ("keys", J.Int (List.length frontier)) ]
          "net.apply" apply
      else apply ()
    in
    let rec session pending_offer =
      if locked t (fun () -> t.stopping) then Ok ()
      else
      match recv t fd with
      | Ok None | Ok (Some Proto.Bye) -> Ok ()
      | Error _ as e -> e
      | Ok (Some (Proto.Offer (header, frontier))) -> (
          match decode_frontier frontier with
          | Error m -> proto_fail m
          | Ok frontier -> (
              let wanted = locked t (fun () -> KV.wants t.store frontier) in
              match send t fd (Proto.Want wanted) with
              | Ok () -> session (Some (header, frontier))
              | Error _ as e -> e))
      | Ok (Some (Proto.Items items)) -> (
          match pending_offer with
          | None -> proto_fail "Items without a preceding Offer"
          | Some (header, frontier) -> (
              match decode_delta items with
              | Error m -> proto_fail m
              | Ok items -> (
                  let results = reconcile_round header frontier items in
                  match send t fd (Proto.Result (encode_delta results)) with
                  | Ok () -> session None
                  | Error _ as e -> e)))
      | Ok (Some (Proto.Hello _ | Proto.Hello_ack _)) ->
          proto_fail "unexpected handshake mid-session"
      | Ok (Some (Proto.Want _ | Proto.Result _)) ->
          proto_fail "unexpected initiator-bound message"
    in
    match handshake () with Ok () -> ignore (session None) | Error _ -> ()

  let handle_connection t fd =
    let finally () =
      (* deregister before closing: [stop] only shuts down fds it can
         still see in the table, so it never touches a closed (and
         possibly recycled) descriptor *)
      let self = Thread.id (Thread.self ()) in
      locked t (fun () ->
          t.conn_threads <- List.remove_assoc self t.conn_threads);
      try Unix.close fd with Unix.Unix_error _ -> ()
    in
    Fun.protect ~finally (fun () ->
        (* an idle or vanished peer must not pin a responder thread
           forever *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout_s
         with Unix.Unix_error _ -> ());
        try serve_connection t fd
        with Unix.Unix_error _ | Sys_error _ -> ())

  let rec accept_loop t =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if locked t (fun () -> t.stopping) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          locked t (fun () ->
              let th = Thread.create (fun () -> handle_connection t fd) () in
              t.conn_threads <- (Thread.id th, (th, fd)) :: t.conn_threads);
          accept_loop t
        end
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        if not (locked t (fun () -> t.stopping)) then accept_loop t
    | exception Unix.Unix_error _ -> ()

  (* --- initiator: one dial thread per configured peer --- *)

  let connect_peer t peer =
    match
      let inet =
        match Unix.inet_addr_of_string peer.p_host with
        | addr -> addr
        | exception Failure _ -> (
            match (Unix.gethostbyname peer.p_host).Unix.h_addr_list with
            | [||] -> failwith (Printf.sprintf "cannot resolve %S" peer.p_host)
            | addrs -> addrs.(0))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout_s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.idle_timeout_s;
         Unix.connect fd (Unix.ADDR_INET (inet, peer.p_port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd -> Ok fd
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Failure m -> Error m
    | exception Not_found -> Error (Printf.sprintf "cannot resolve %S" peer.p_host)

  let handshake_peer t peer fd =
    match send t fd (Proto.Hello (hello t)) with
    | Error _ as e -> e
    | Ok () -> (
        match recv t fd with
        | Ok (Some (Proto.Hello_ack h)) ->
            if h.Proto.proto <> Proto.version then (
              M.inc t.m.proto_errors;
              Error
                (Printf.sprintf "protocol version mismatch: theirs %d, ours %d"
                   h.Proto.proto Proto.version))
            else (
              peer.p_node_id <- Some h.Proto.node_id;
              Ok ())
        | Ok (Some _) ->
            M.inc t.m.proto_errors;
            Error "expected Hello_ack"
        | Ok None -> Error "closed during handshake"
        | Error _ as e -> e)

  (* One anti-entropy round over an established link.  The apply guard:
     a result entry is only adopted when the local entry is still what
     the round's offer advertised — a put that raced the round keeps
     its write and the next round reconciles it properly. *)
  let do_round t peer fd =
    let run () =
      let header =
        if Tr.attached () then
          match Tr.current () with
          | Some ctx -> Tr.to_header ctx
          | None -> ""
        else ""
      in
      let snapshot, frontier =
        locked t (fun () -> (t.store, KV.offer t.store))
      in
      match send t fd (Proto.Offer (header, encode_frontier frontier)) with
      | Error _ as e -> e
      | Ok () -> (
          match recv t fd with
          | Ok (Some (Proto.Want wanted)) -> (
              let items =
                locked t (fun () -> KV.fulfil t.store wanted)
              in
              match send t fd (Proto.Items (encode_delta items)) with
              | Error _ as e -> e
              | Ok () -> (
                  match recv t fd with
                  | Ok (Some (Proto.Result results)) -> (
                      match decode_delta results with
                      | Error m ->
                          M.inc t.m.proto_errors;
                          Error m
                      | Ok results ->
                          locked t (fun () ->
                              let fresh =
                                List.filter
                                  (fun (key, _, _) ->
                                    KV.stamp t.store key
                                    = KV.stamp snapshot key
                                    && KV.get t.store key
                                       = KV.get snapshot key)
                                  results
                              in
                              t.store <- KV.apply t.store fresh;
                              refresh_store_gauges t);
                          M.inc t.m.rounds;
                          peer.p_rounds <- peer.p_rounds + 1;
                          Ok ())
                  | Ok (Some _) ->
                      M.inc t.m.proto_errors;
                      Error "expected Result"
                  | Ok None -> Error "closed mid-round"
                  | Error _ as e -> e))
          | Ok (Some _) ->
              M.inc t.m.proto_errors;
              Error "expected Want"
          | Ok None -> Error "closed mid-round"
          | Error _ as e -> e)
    in
    if Tr.attached () then
      Tr.with_span "net.session"
        ~attrs:
          [
            ("peer", J.String (Printf.sprintf "%s:%d" peer.p_host peer.p_port));
          ]
        run
    else run ()

  (* Interruptible sleep: wake early when the node is stopping. *)
  let snooze t seconds =
    let rec go left =
      if left > 0. && not (locked t (fun () -> t.stopping)) then begin
        Thread.delay (Float.min 0.05 left);
        go (left -. 0.05)
      end
    in
    go seconds

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let rec dial_loop t peer ~delay =
    if not (locked t (fun () -> t.stopping)) then begin
      peer.p_state <- Connecting;
      match connect_peer t peer with
      | Error m -> back_off t peer ~delay m
      | Ok fd -> (
          match handshake_peer t peer fd with
          | Error m ->
              close_quietly fd;
              back_off t peer ~delay m
          | Ok () ->
              peer.p_state <- Connected;
              peer.p_attempts <- 0;
              peer.p_last_error <- None;
              refresh_peer_gauge t;
              rounds_loop t peer fd)
    end

  and back_off t peer ~delay reason =
    peer.p_attempts <- peer.p_attempts + 1;
    peer.p_last_error <- Some reason;
    peer.p_state <- Backoff delay;
    refresh_peer_gauge t;
    M.inc t.m.reconnects;
    snooze t delay;
    dial_loop t peer ~delay:(Float.min max_backoff_s (delay *. 2.))

  and rounds_loop t peer fd =
    if locked t (fun () -> t.stopping) then begin
      let (_ : (unit, string) result) = send t fd Proto.Bye in
      close_quietly fd;
      peer.p_state <- Idle;
      refresh_peer_gauge t
    end
    else
      match do_round t peer fd with
      | Ok () ->
          snooze t t.interval_s;
          rounds_loop t peer fd
      | Error m ->
          close_quietly fd;
          back_off t peer ~delay:initial_backoff_s m

  (* A one-shot synchronous round against every peer, over dedicated
     connections: deterministic anti-entropy for benches, smoke tests
     and the soak driver (the periodic dial threads keep their own
     cadence).  Returns how many peers completed a round. *)
  let sync_now t =
    List.fold_left
      (fun ok peer ->
        match connect_peer t peer with
        | Error m ->
            peer.p_last_error <- Some m;
            ok
        | Ok fd ->
            Fun.protect
              ~finally:(fun () -> close_quietly fd)
              (fun () ->
                match handshake_peer t peer fd with
                | Error m ->
                    peer.p_last_error <- Some m;
                    ok
                | Ok () -> (
                    match do_round t peer fd with
                    | Ok () ->
                        let (_ : (unit, string) result) =
                          send t fd Proto.Bye
                        in
                        ok + 1
                    | Error m ->
                        peer.p_last_error <- Some m;
                        ok)))
      0 t.peers

  (* --- the /peers.json snapshot --- *)

  let peer_json p =
    let state, backoff_s =
      match p.p_state with
      | Idle -> ("idle", None)
      | Connecting -> ("connecting", None)
      | Connected -> ("connected", None)
      | Backoff d -> ("backoff", Some d)
    in
    J.Obj
      ([
         ("host", J.String p.p_host);
         ("port", J.Int p.p_port);
         ("state", J.String state);
         ("attempts", J.Int p.p_attempts);
         ("rounds", J.Int p.p_rounds);
       ]
      @ (match backoff_s with
        | Some d -> [ ("backoff_s", J.Float d) ]
        | None -> [])
      @ (match p.p_node_id with
        | Some id -> [ ("node_id", J.String id) ]
        | None -> [])
      @
      match p.p_last_error with
      | Some m -> [ ("last_error", J.String m) ]
      | None -> [])

  let peers_json t =
    J.Obj
      [
        ("node_id", J.String t.node_id);
        ("backend", J.String t.backend);
        ("protocol", J.String Proto.magic);
        ("port", J.Int t.bound_port);
        ("store_keys", J.Int (List.length (keys t)));
        ("store_digest", J.Int (digest t));
        ("peers", J.List (List.map peer_json t.peers));
      ]

  (* --- lifecycle --- *)

  let create ?(registry = R.default) ?(interval_s = 1.0)
      ?(idle_timeout_s = 60.0) ?(addr = "127.0.0.1") ~node_id ~backend ~port
      ~peers () =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let inet = Unix.inet_addr_of_string addr in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let bound_addr = Unix.getsockname fd in
    let bound_port =
      match bound_addr with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    let peers =
      List.map
        (fun (host, port) ->
          {
            p_host = host;
            p_port = port;
            p_state = Idle;
            p_node_id = None;
            p_attempts = 0;
            p_rounds = 0;
            p_last_error = None;
          })
        peers
    in
    let t =
      {
        node_id;
        backend;
        interval_s;
        idle_timeout_s;
        m = metrics registry;
        mutex = Mutex.create ();
        store = KV.empty;
        stopping = false;
        listen_fd = fd;
        bound_addr;
        bound_port;
        peers;
        accept_thread = None;
        dial_threads = [];
        conn_threads = [];
      }
    in
    refresh_store_gauges t;
    refresh_peer_gauge t;
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    t

  (* Start the periodic dial threads (separate from [create] so a node
     can be driven purely by [sync_now]). *)
  let start_dialers t =
    t.dial_threads <-
      List.map
        (fun peer ->
          Thread.create
            (fun () -> dial_loop t peer ~delay:initial_backoff_s)
            ())
        t.peers

  let stop t =
    let already =
      locked t (fun () ->
          let s = t.stopping in
          t.stopping <- true;
          s)
    in
    if not already then begin
      (* wake the accept loop with a throwaway connection to ourselves *)
      (try
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try Unix.connect fd t.bound_addr with Unix.Unix_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ())
       with Unix.Unix_error _ -> ());
      (match t.accept_thread with Some th -> Thread.join th | None -> ());
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      List.iter Thread.join t.dial_threads;
      (* a responder blocked in a read (or fed by a peer that keeps the
         session busy) must not pin the join: shutting the socket down
         fails its next recv immediately.  Done under the lock, so only
         live, not-yet-closed descriptors are touched. *)
      let threads =
        locked t (fun () ->
            List.map
              (fun (_, (th, fd)) ->
                (try Unix.shutdown fd Unix.SHUTDOWN_ALL
                 with Unix.Unix_error _ -> ());
                th)
              t.conn_threads)
      in
      List.iter Thread.join threads
    end
end
