(** The [vstamp-sync/1] message layer (one message per frame).

    A tag byte, then varint-length-prefixed fields.  Stamps travel as
    opaque strings (the canonical {!Vstamp_codec.Wire} encoding, byte-
    identical across name backends), so the layer is backend-agnostic.
    {!decode} is total: truncated fields, absurd counts or bit-flipped
    tags return [Error], never raise.  See [doc/protocol.md] for the
    frame grammar and session state machine. *)

val version : int
(** The protocol version this build speaks: [1]. *)

val magic : string
(** ["vstamp-sync/1"], carried in every handshake frame. *)

type hello = { node_id : string; backend : string; proto : int }

type msg =
  | Hello of hello  (** Initiator's opening frame. *)
  | Hello_ack of hello  (** Responder's acceptance. *)
  | Offer of string * (string * string * string) list
      (** Trace header + frontier: (key, stamp, digest) per entry. *)
  | Want of string list  (** Keys whose full entries are needed. *)
  | Items of (string * string * string list) list
      (** Full entries: (key, stamp, values). *)
  | Result of (string * string * string list) list
      (** The initiator's halves, same shape as [Items]. *)
  | Bye  (** Polite end of session. *)

val encode : msg -> string

val decode : string -> (msg, string) result
(** Total: any byte string decodes to a message or an [Error] naming
    the defect.  Trailing garbage after a well-formed message is an
    error too (one frame carries exactly one message). *)
