(* The [vstamp-sync/1] message layer inside the frames.

   One frame = one message = a tag byte followed by varint-length-
   prefixed fields.  Stamps travel as opaque strings (the canonical
   {!Vstamp_codec.Wire} encoding, byte-identical across name backends),
   so this layer is backend-agnostic: the node layer owns stamp
   (de)serialization and this one owns structure.

   Decoding is total: any input — truncated, oversized counts,
   bit-flipped tags — comes back as [Error], never an exception.  The
   handshake carries the protocol magic, so a peer speaking anything
   else fails loudly at the first frame. *)

let version = 1

let magic = "vstamp-sync/1"

type hello = { node_id : string; backend : string; proto : int }

type msg =
  | Hello of hello  (** Initiator's opening frame. *)
  | Hello_ack of hello  (** Responder's acceptance. *)
  | Offer of string * (string * string * string) list
      (** Trace header + frontier: (key, stamp, digest) per entry. *)
  | Want of string list  (** Keys whose full entries are needed. *)
  | Items of (string * string * string list) list
      (** Full entries: (key, stamp, values). *)
  | Result of (string * string * string list) list
      (** The initiator's halves, same shape as [Items]. *)
  | Bye  (** Polite end of session. *)

(* --- primitive writers --- *)

let put_varint b n =
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Proto.put_varint: negative";
  go n

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_list b put xs =
  put_varint b (List.length xs);
  List.iter (put b) xs

(* --- primitive readers ---

   A reader is [string -> pos -> (value * pos) option]; [None] means
   malformed and poisons the whole decode. *)

let ( let* ) o f = match o with None -> None | Some v -> f v

let get_varint s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len || shift > 56 then None
    else
      let c = Char.code s.[pos] in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then Some (acc, pos + 1)
      else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let get_string s pos =
  let* n, pos = get_varint s pos in
  if n < 0 || pos + n > String.length s then None
  else Some (String.sub s pos n, pos + n)

let get_list get_elt s pos =
  let* n, pos = get_varint s pos in
  (* a count cannot exceed one element per remaining byte: reject
     absurd announcements before looping *)
  if n > String.length s - pos then None
  else
    let rec go i pos acc =
      if i = 0 then Some (List.rev acc, pos)
      else
        let* v, pos = get_elt s pos in
        go (i - 1) pos (v :: acc)
    in
    go n pos []

(* --- message codec --- *)

let tag = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Offer _ -> 3
  | Want _ -> 4
  | Items _ -> 5
  | Result _ -> 6
  | Bye -> 7

let put_hello b h =
  put_string b magic;
  put_varint b h.proto;
  put_string b h.node_id;
  put_string b h.backend

let put_frontier_entry b (key, stamp, digest) =
  put_string b key;
  put_string b stamp;
  put_string b digest

let put_delta_entry b (key, stamp, values) =
  put_string b key;
  put_string b stamp;
  put_list b put_string values

let encode msg =
  let b = Buffer.create 256 in
  Buffer.add_char b (Char.chr (tag msg));
  (match msg with
  | Hello h | Hello_ack h -> put_hello b h
  | Offer (header, frontier) ->
      put_string b header;
      put_list b put_frontier_entry frontier
  | Want keys -> put_list b put_string keys
  | Items entries | Result entries -> put_list b put_delta_entry entries
  | Bye -> ());
  Buffer.contents b

let get_hello s pos =
  let* m, pos = get_string s pos in
  if not (String.equal m magic) then None
  else
    let* proto, pos = get_varint s pos in
    let* node_id, pos = get_string s pos in
    let* backend, pos = get_string s pos in
    Some ({ node_id; backend; proto }, pos)

let get_frontier_entry s pos =
  let* key, pos = get_string s pos in
  let* stamp, pos = get_string s pos in
  let* digest, pos = get_string s pos in
  Some ((key, stamp, digest), pos)

let get_delta_entry s pos =
  let* key, pos = get_string s pos in
  let* stamp, pos = get_string s pos in
  let* values, pos = get_list get_string s pos in
  Some ((key, stamp, values), pos)

let decode s =
  let fail = Error "malformed message" in
  if String.length s < 1 then Error "empty message"
  else
    let finish pos v = if pos = String.length s then Ok v else fail in
    let pos = 1 in
    match Char.code s.[0] with
    | 1 -> (
        match get_hello s pos with
        | Some (h, pos) -> finish pos (Hello h)
        | None -> fail)
    | 2 -> (
        match get_hello s pos with
        | Some (h, pos) -> finish pos (Hello_ack h)
        | None -> fail)
    | 3 -> (
        match
          let* header, pos = get_string s pos in
          let* frontier, pos = get_list get_frontier_entry s pos in
          Some ((header, frontier), pos)
        with
        | Some ((header, frontier), pos) -> finish pos (Offer (header, frontier))
        | None -> fail)
    | 4 -> (
        match get_list get_string s pos with
        | Some (keys, pos) -> finish pos (Want keys)
        | None -> fail)
    | 5 -> (
        match get_list get_delta_entry s pos with
        | Some (entries, pos) -> finish pos (Items entries)
        | None -> fail)
    | 6 -> (
        match get_list get_delta_entry s pos with
        | Some (entries, pos) -> finish pos (Result entries)
        | None -> fail)
    | 7 -> finish pos Bye
    | t -> Error (Printf.sprintf "unknown message tag %d" t)
