(* Length-prefixed frames: 4-byte big-endian payload length, then the
   payload.  The length cap bounds what a hostile or corrupted peer can
   make us allocate; a frame announcing more is a protocol error, not
   an out-of-memory.  Encode/decode are pure (the fuzz tests drive them
   directly); read/write wrap a file descriptor with EINTR retries so a
   stray signal never tears a frame in half. *)

let header_len = 4

let max_payload = 16 * 1024 * 1024

type error =
  | Truncated  (** Input ended inside a header or announced payload. *)
  | Oversized of int  (** Announced length beyond {!max_payload}. *)
  | Io of string  (** Socket-level failure (reset, timeout, ...). *)

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated frame"
  | Oversized n -> Format.fprintf ppf "oversized frame (%d bytes announced)" n
  | Io m -> Format.fprintf ppf "io error: %s" m

let encode payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

let header_length s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* Decode one frame from the head of [s]: the payload and the bytes
   consumed. *)
let decode s =
  if String.length s < header_len then Error Truncated
  else
    let n = header_length s 0 in
    if n > max_payload then Error (Oversized n)
    else if String.length s < header_len + n then Error Truncated
    else Ok (String.sub s header_len n, header_len + n)

(* --- blocking fd IO --- *)

let rec really_write fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | w -> really_write fd b (off + w) (len - w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        really_write fd b off len

type fill = Full | Eof_start | Eof_mid | Fail of string

let really_read fd b len =
  let rec go off got =
    if off >= len then Full
    else
      match Unix.read fd b off (len - off) with
      | 0 -> if got = 0 then Eof_start else Eof_mid
      | r -> go (off + r) (got + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off got
      | exception Unix.Unix_error (e, _, _) -> Fail (Unix.error_message e)
  in
  go 0 0

(* [write fd payload] frames and sends; returns the wire bytes. *)
let write fd payload =
  let s = encode payload in
  match really_write fd (Bytes.unsafe_of_string s) 0 (String.length s) with
  | () -> Ok (String.length s)
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

(* [read fd]: [Ok (Some (payload, wire_bytes))] for one frame,
   [Ok None] on clean EOF at a frame boundary, [Error] on a torn or
   oversized frame or a socket failure. *)
let read fd =
  let hdr = Bytes.create header_len in
  match really_read fd hdr header_len with
  | Eof_start -> Ok None
  | Eof_mid -> Error Truncated
  | Fail m -> Error (Io m)
  | Full ->
      let n = header_length (Bytes.unsafe_to_string hdr) 0 in
      if n > max_payload then Error (Oversized n)
      else
        let payload = Bytes.create n in
        (match really_read fd payload n with
        | Full -> Ok (Some (Bytes.unsafe_to_string payload, header_len + n))
        | Eof_start | Eof_mid -> Error Truncated
        | Fail m -> Error (Io m))
