(** [vstamp-sync/1] framing: 4-byte big-endian length + payload.

    The length cap ({!max_payload}) bounds what a corrupted or hostile
    peer can make the process allocate; frames announcing more are a
    protocol error.  {!encode}/{!decode} are pure — the fuzz tests
    drive them directly — while {!read}/{!write} wrap a connected
    socket with EINTR-safe blocking IO. *)

val header_len : int
(** 4. *)

val max_payload : int
(** 16 MiB. *)

type error =
  | Truncated  (** Input ended inside a header or announced payload. *)
  | Oversized of int  (** Announced length beyond {!max_payload}. *)
  | Io of string  (** Socket-level failure (reset, timeout, ...). *)

val pp_error : Format.formatter -> error -> unit

val encode : string -> string
(** Frame a payload.
    @raise Invalid_argument beyond {!max_payload}. *)

val decode : string -> (string * int, error) result
(** Decode one frame off the head of a buffer: the payload and the
    bytes consumed. *)

val write : Unix.file_descr -> string -> (int, error) result
(** Frame and send a payload; returns the wire bytes written. *)

val read : Unix.file_descr -> ((string * int) option, error) result
(** One frame off the wire: [Ok (Some (payload, wire_bytes))], or
    [Ok None] on a clean EOF at a frame boundary.  A peer dying inside
    a frame is [Error Truncated]. *)
