open Vstamp_core

type outcome =
  | Created
  | Unchanged
  | Propagated_ab
  | Propagated_ba
  | Resolved
  | Conflict

let outcome_of_relation = function
  | Relation.Equal -> Unchanged
  | Relation.Dominates -> Propagated_ab
  | Relation.Dominated -> Propagated_ba
  | Relation.Concurrent -> Conflict

type charge = { meta_a : int; meta_b : int; payload : int }

let delta outcome { meta_a; meta_b; payload } =
  let shipped = meta_a + meta_b + payload in
  let minimal =
    match outcome with
    | Unchanged -> 0
    | Propagated_ab -> meta_a + payload
    | Propagated_ba -> meta_b + payload
    | Resolved | Conflict -> shipped
    | Created -> shipped
  in
  (shipped, minimal)

module type STORE = sig
  type t

  type item

  type meta

  val keys : t -> string list

  val find : t -> string -> item option

  val set : t -> string -> item -> t

  val meta_of : item -> meta

  val relation : meta -> meta -> Relation.t

  val meta_bytes : meta -> int

  val payload_bytes : item -> int

  val digest : item -> string

  val of_meta : key:string -> meta -> item
end

module Make (S : STORE) = struct
  module Smap = Map.Make (String)

  type verdict = {
    item_a : S.item;
    item_b : S.item;
    relation : Relation.t;
    outcome : outcome;
    charge : charge;
  }

  type config = {
    reconcile : key:string -> S.item -> S.item -> verdict;
    replicate : S.item -> S.item * S.item;
  }

  type report = {
    key : string;
    relation : Relation.t option;
    outcome : outcome;
    payload : int;
    shipped : int;
    minimal : int;
  }

  type frontier_entry = { f_key : string; f_meta : S.meta; f_digest : string }

  type entry = { e_key : string; e_item : S.item }

  let offer store =
    List.filter_map
      (fun key ->
        Option.map
          (fun item ->
            { f_key = key; f_meta = S.meta_of item; f_digest = S.digest item })
          (S.find store key))
      (S.keys store)

  let wants store frontier =
    List.filter_map
      (fun f ->
        match S.find store f.f_key with
        | None -> Some f.f_key
        | Some item -> (
            match S.relation f.f_meta (S.meta_of item) with
            | Relation.Dominates -> Some f.f_key
            | Relation.Dominated -> None
            | Relation.Equal | Relation.Concurrent ->
                if String.equal f.f_digest (S.digest item) then None
                else Some f.f_key))
      frontier

  let fulfil store wanted =
    List.filter_map
      (fun key ->
        Option.map (fun item -> { e_key = key; e_item = item })
          (S.find store key))
      wanted

  let charge_for ledger tally on_report report =
    (match ledger with
    | Some c -> Ledger.account c ~shipped:report.shipped ~minimal:report.minimal
    | None -> ());
    (match tally with
    | Some t -> Ledger.add t ~shipped:report.shipped ~minimal:report.minimal
    | None -> ());
    match on_report with Some f -> f report | None -> ()

  let reconcile ?ledger ?tally ?on_report config store frontier items =
    let offered =
      List.fold_left (fun m f -> Smap.add f.f_key f m) Smap.empty frontier
    in
    let received =
      List.fold_left (fun m e -> Smap.add e.e_key e.e_item m) Smap.empty items
    in
    let all_keys =
      List.sort_uniq String.compare
        (List.map (fun f -> f.f_key) frontier @ S.keys store)
    in
    let emit report = charge_for ledger tally on_report report in
    let store, results_rev, reports_rev =
      List.fold_left
        (fun (store, results, reports) key ->
          match (Smap.find_opt key offered, S.find store key) with
          | None, None -> (store, results, reports)
          | None, Some item ->
              (* responder-only entry: replicate it for the initiator *)
              let mine, theirs = config.replicate item in
              let charge =
                {
                  meta_a = S.meta_bytes (S.meta_of item);
                  meta_b = 0;
                  payload = S.payload_bytes item;
                }
              in
              let shipped, minimal = delta Created charge in
              let report =
                {
                  key;
                  relation = None;
                  outcome = Created;
                  payload = charge.payload;
                  shipped;
                  minimal;
                }
              in
              emit report;
              ( S.set store key mine,
                { e_key = key; e_item = theirs } :: results,
                report :: reports )
          | Some f, None -> (
              match Smap.find_opt key received with
              | None ->
                  (* requested but not delivered: skip, no charge *)
                  (store, results, reports)
              | Some item ->
                  (* initiator-only entry: fork it, keep the peer branch *)
                  let mine, theirs = config.replicate item in
                  let charge =
                    {
                      meta_a = S.meta_bytes f.f_meta;
                      meta_b = 0;
                      payload = S.payload_bytes item;
                    }
                  in
                  let shipped, minimal = delta Created charge in
                  let report =
                    {
                      key;
                      relation = None;
                      outcome = Created;
                      payload = charge.payload;
                      shipped;
                      minimal;
                    }
                  in
                  emit report;
                  ( S.set store key theirs,
                    { e_key = key; e_item = mine } :: results,
                    report :: reports ))
          | Some f, Some mine_item -> (
              let reconcile_with item_a =
                let v = config.reconcile ~key item_a mine_item in
                let shipped, minimal = delta v.outcome v.charge in
                let report =
                  {
                    key;
                    relation = Some v.relation;
                    outcome = v.outcome;
                    payload = v.charge.payload;
                    shipped;
                    minimal;
                  }
                in
                emit report;
                ( S.set store key v.item_b,
                  { e_key = key; e_item = v.item_a } :: results,
                  report :: reports )
              in
              match Smap.find_opt key received with
              | Some item_a -> reconcile_with item_a
              | None -> (
                  match S.relation f.f_meta (S.meta_of mine_item) with
                  | Relation.Dominated ->
                      (* we dominate: rebuild the initiator's side from
                         the frontier alone — propagation never reads
                         the dominated payload *)
                      reconcile_with (S.of_meta ~key f.f_meta)
                  | rel ->
                      (* observationally equal (matching digest): the
                         exchange is elided, only metadata compared *)
                      let charge =
                        {
                          meta_a = S.meta_bytes f.f_meta;
                          meta_b = S.meta_bytes (S.meta_of mine_item);
                          payload = 0;
                        }
                      in
                      let shipped, minimal = delta Unchanged charge in
                      let report =
                        {
                          key;
                          relation = Some rel;
                          outcome = Unchanged;
                          payload = 0;
                          shipped;
                          minimal;
                        }
                      in
                      emit report;
                      (store, results, report :: reports))))
        (store, [], []) all_keys
    in
    (store, List.rev results_rev, List.rev reports_rev)

  let apply store results =
    List.fold_left (fun s e -> S.set s e.e_key e.e_item) store results

  type spans = {
    span_session : string;
    span_apply : string;
    unit_key : string;
  }

  let session_body ?ledger ?tally ?on_report config a b =
    (match ledger with Some c -> Ledger.round c | None -> ());
    let frontier = offer a in
    let wanted = wants b frontier in
    let items = fulfil a wanted in
    let b, results, reports =
      reconcile ?ledger ?tally ?on_report config b frontier items
    in
    let a = apply a results in
    (a, b, reports)

  (* A session is one span; its trace context rides the session
     envelope (the header the on-the-wire protocol carries in its first
     frame), and the receiving side's work is a child span extracted
     from that header — so the remote half of every sync round
     continues the same trace, across processes once the envelope
     crosses a socket. *)
  let session ?ledger ?tally ?on_report ?spans config a b =
    let module Tr = Vstamp_obs.Trace_ctx in
    let module J = Vstamp_obs.Jsonx in
    match spans with
    | Some sp when Tr.attached () ->
        Tr.with_span sp.span_session (fun () ->
            let header =
              match Tr.current () with
              | Some ctx -> Tr.to_header ctx
              | None -> ""
            in
            let a, b, reports =
              session_body ?ledger ?tally ?on_report config a b
            in
            let conflicts_n =
              List.length (List.filter (fun r -> r.outcome = Conflict) reports)
            in
            Tr.annotate
              [
                (sp.unit_key, J.Int (List.length reports));
                ("conflicts", J.Int conflicts_n);
              ];
            Tr.with_remote_span ~header
              ~attrs:[ (sp.unit_key, J.Int (List.length reports)) ]
              sp.span_apply
              (fun () -> ());
            (a, b, reports))
    | _ -> session_body ?ledger ?tally ?on_report config a b
end
