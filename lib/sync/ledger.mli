(** The shipped / minimal / redundant byte ledger of anti-entropy.

    Every sync surface in the tree accounts the same two quantities per
    reconciled entry: what its exchange actually ships (both sides'
    stamp metadata for every compared entry, plus the payload that
    changes hands) and the minimal delta a frontier-exchange protocol
    needs (nothing for equivalent entries, the dominant side only for
    ordered ones, everything when concurrency must be surfaced).  This
    module is the single implementation behind the [sync_*],
    [kvs_sync_*], [sim_sync_*] and [net_sync_*] metric families; the
    formula mapping an {!Engine.outcome} to the pair lives in
    {!Engine.delta}. *)

(** {1 Run-local tallies}

    A plain accumulator for scenario code that keeps its own totals
    (the lag simulation's per-run ledger) and publishes growth
    separately. *)

type t = {
  mutable shipped : int;
  mutable minimal : int;
  mutable entries : int;
}

val create : unit -> t

val add : t -> shipped:int -> minimal:int -> unit

val redundant : t -> int

val efficiency : t -> float
(** [minimal / shipped]; [1.0] when nothing has shipped. *)

(** {1 Registry-bound counter families}

    [counters ~prefix] binds the five canonical metrics
    [<prefix>rounds_total], [<prefix>shipped_bytes_total],
    [<prefix>minimal_bytes_total], [<prefix>redundant_bytes_total] and
    the [<prefix>delta_efficiency] gauge into a registry — the shape
    shared by ["sync_"], ["kvs_sync_"] and ["net_sync_"]. *)

type counters

val counters :
  ?registry:Vstamp_obs.Registry.t -> prefix:string -> unit -> counters

val round : counters -> unit
(** Bump [<prefix>rounds_total]. *)

val account : counters -> shipped:int -> minimal:int -> unit
(** Add one entry's charge and refresh the efficiency gauge. *)

(** {1 Growth publication}

    Counters accumulate across runs sharing a registry (the soak driver
    re-runs a scenario every iteration), so a run that keeps its own
    {!t} publishes only the growth since its last publication.  The
    family is the prefix's [shipped/minimal/redundant_bytes_total]
    counters plus the [delta_efficiency] gauge — no rounds counter
    (the scenario owns its round accounting). *)

type publisher

val publisher :
  registry:Vstamp_obs.Registry.t -> prefix:string -> unit -> publisher

val publish : publisher -> t -> unit
(** Push the growth of [t] since the last [publish] into the counters
    and set the gauge to [t]'s running efficiency. *)
