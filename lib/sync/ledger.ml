module R = Vstamp_obs.Registry
module M = Vstamp_obs.Metric

type t = {
  mutable shipped : int;
  mutable minimal : int;
  mutable entries : int;
}

let create () = { shipped = 0; minimal = 0; entries = 0 }

let add t ~shipped ~minimal =
  t.shipped <- t.shipped + shipped;
  t.minimal <- t.minimal + minimal;
  t.entries <- t.entries + 1

let redundant t = t.shipped - t.minimal

let efficiency t =
  if t.shipped = 0 then 1.
  else float_of_int t.minimal /. float_of_int t.shipped

type counters = {
  rounds : M.counter;
  shipped : M.counter;
  minimal : M.counter;
  redundant : M.counter;
  eff : M.gauge;
}

let counters ?(registry = R.default) ~prefix () =
  {
    rounds = R.counter registry (prefix ^ "rounds_total");
    shipped = R.counter registry (prefix ^ "shipped_bytes_total");
    minimal = R.counter registry (prefix ^ "minimal_bytes_total");
    redundant = R.counter registry (prefix ^ "redundant_bytes_total");
    eff = R.gauge registry (prefix ^ "delta_efficiency");
  }

let round c = M.inc c.rounds

let account c ~shipped ~minimal =
  M.add c.shipped shipped;
  M.add c.minimal minimal;
  M.add c.redundant (shipped - minimal);
  let s = M.count c.shipped in
  M.set c.eff
    (if s = 0 then 1. else float_of_int (M.count c.minimal) /. float_of_int s)

type publisher = {
  p_shipped : M.counter;
  p_minimal : M.counter;
  p_redundant : M.counter;
  p_eff : M.gauge;
  mutable pub_shipped : int;
  mutable pub_minimal : int;
}

let publisher ~registry ~prefix () =
  {
    p_shipped = R.counter registry (prefix ^ "shipped_bytes_total");
    p_minimal = R.counter registry (prefix ^ "minimal_bytes_total");
    p_redundant = R.counter registry (prefix ^ "redundant_bytes_total");
    p_eff = R.gauge registry (prefix ^ "delta_efficiency");
    pub_shipped = 0;
    pub_minimal = 0;
  }

let publish p (t : t) =
  M.add p.p_shipped (t.shipped - p.pub_shipped);
  M.add p.p_minimal (t.minimal - p.pub_minimal);
  M.add p.p_redundant (redundant t - (p.pub_shipped - p.pub_minimal));
  p.pub_shipped <- t.shipped;
  p.pub_minimal <- t.minimal;
  M.set p.p_eff (efficiency t)
