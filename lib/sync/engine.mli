(** The transport-agnostic anti-entropy engine.

    Every pairwise sync in the tree is the same session, whatever the
    store: compare the two sides' stamp frontiers, request the entries
    one side is missing or dominated on, reconcile them under the
    store's own rules, and return the initiator its halves.  {!Make}
    factors that walk — together with the {!Ledger} byte accounting and
    the trace spans — out of panasync's file sessions, the stamped KV
    store and the network layer, which differ only in their item type
    and reconciliation closures.

    The session is pure and phrased as four legs so a transport can
    interleave them with frames (the [vstamp-sync/1] protocol in
    [Vstamp_net]), while {!Make.session} composes them in-process:

    {v
      initiator A                          responder B
      ----------------                     ----------------
      offer a            -- frontier -->   wants b frontier
      fulfil a wanted    <-- request --
                         --  items   -->   reconcile b frontier items
      apply a results    <-- results --
    v}

    All reconciliation happens at the responder, in sorted key order,
    with the same closures an in-process session uses — so a networked
    session and a local one produce byte-identical stores.  Entries the
    responder dominates are reconstructed from the offered frontier
    metadata alone (a phantom item with an empty payload: propagation
    only ever reads the dominant side's payload), so the dominated
    side's payload never crosses the wire. *)

open Vstamp_core

(** What reconciling one entry did.  [Propagated_ab] fast-forwarded the
    responder from the initiator's copy, [Propagated_ba] the reverse;
    [Resolved] settled surfaced concurrency, [Conflict] left it
    standing. *)
type outcome =
  | Created
  | Unchanged
  | Propagated_ab
  | Propagated_ba
  | Resolved
  | Conflict

val outcome_of_relation : Relation.t -> outcome
(** The outcome a plain fast-forwarding sync yields per relation:
    [Equal → Unchanged], [Dominates → Propagated_ab],
    [Dominated → Propagated_ba], [Concurrent → Conflict]. *)

type charge = { meta_a : int; meta_b : int; payload : int }
(** One entry's byte accounting inputs: each side's causality-metadata
    size and the payload bytes that changed hands. *)

val delta : outcome -> charge -> int * int
(** [(shipped, minimal)]: a full exchange ships both metadatas plus the
    payload; the frontier-exchange minimum is nothing for [Unchanged],
    the dominant side's metadata plus payload for propagation,
    everything when concurrency is surfaced, and the whole entry for
    [Created] (creations carry no redundancy). *)

(** What {!Make} needs from a store: a sorted key space of items, each
    carrying comparable causality metadata ([meta]) and a payload
    fingerprint ([digest]), plus the phantom constructor ([of_meta])
    that rebuilds a payload-less item from offered frontier metadata. *)
module type STORE = sig
  type t

  type item

  type meta

  val keys : t -> string list
  (** Sorted, unique. *)

  val find : t -> string -> item option

  val set : t -> string -> item -> t

  val meta_of : item -> meta

  val relation : meta -> meta -> Relation.t

  val meta_bytes : meta -> int

  val payload_bytes : item -> int

  val digest : item -> string
  (** Payload fingerprint: equal digests mean observationally equal
      payloads (used to elide equal-but-renamed exchanges). *)

  val of_meta : key:string -> meta -> item
  (** A phantom item: the frontier metadata with an empty payload.
      Only ever passed as the {e dominated} side of [reconcile]. *)
end

module Make (S : STORE) : sig
  type verdict = {
    item_a : S.item;
    item_b : S.item;
    relation : Relation.t;
    outcome : outcome;
    charge : charge;
  }
  (** A reconciliation closure's result: both updated items, the
      relation it observed, what it did, and the byte charge (the
      caller decides whether metadata is measured before or after the
      reconciliation — the stores disagree and both are defensible). *)

  type config = {
    reconcile : key:string -> S.item -> S.item -> verdict;
        (** Reconcile two copies of one entry (initiator's first). *)
    replicate : S.item -> S.item * S.item;
        (** Fork an entry for a peer that lacks it; the owner keeps the
            first branch, the peer receives the second. *)
  }

  type report = {
    key : string;
    relation : Relation.t option;  (** [None] for one-sided entries. *)
    outcome : outcome;
    payload : int;  (** Payload bytes that crossed. *)
    shipped : int;
    minimal : int;
  }

  (** {1 The four legs} *)

  type frontier_entry = { f_key : string; f_meta : S.meta; f_digest : string }

  type entry = { e_key : string; e_item : S.item }

  val offer : S.t -> frontier_entry list
  (** Leg 1 (initiator): the full frontier, sorted by key. *)

  val wants : S.t -> frontier_entry list -> string list
  (** Leg 2 (responder): the keys whose full items the responder needs
      — ones it lacks, is dominated on, or holds concurrent/equal with
      a different payload.  Entries the responder dominates, and
      observationally equal ones, are deliberately not requested. *)

  val fulfil : S.t -> string list -> entry list
  (** Leg 3 (initiator): the requested items, in request order. *)

  val reconcile :
    ?ledger:Ledger.counters ->
    ?tally:Ledger.t ->
    ?on_report:(report -> unit) ->
    config ->
    S.t ->
    frontier_entry list ->
    entry list ->
    S.t * entry list * report list
  (** Leg 4 (responder): walk the sorted union of the offered frontier
      and the local keys, reconciling received items, reconstructing
      phantom dominated entries, replicating one-sided ones, and
      skipping observationally equal ones.  Returns the updated store,
      the initiator's halves (leg 5's payload), and one report per key
      in sorted order.  Every report is charged to [ledger]/[tally]. *)

  val apply : S.t -> entry list -> S.t
  (** Final leg (initiator): adopt the responder's results. *)

  (** {1 In-process composition} *)

  type spans = {
    span_session : string;  (** e.g. ["sync.session"]. *)
    span_apply : string;  (** e.g. ["sync.apply"]. *)
    unit_key : string;  (** The count attribute: ["files"], ["keys"]. *)
  }

  val session :
    ?ledger:Ledger.counters ->
    ?tally:Ledger.t ->
    ?on_report:(report -> unit) ->
    ?spans:spans ->
    config ->
    S.t ->
    S.t ->
    S.t * S.t * report list
  (** One whole anti-entropy session between two local stores: the four
      legs composed back to back.  Bumps the ledger's round counter,
      and — when [spans] is given and tracing is attached — wraps the
      walk in a session span whose context rides to a child apply span,
      the same shape a networked session stretches over a socket. *)
end
