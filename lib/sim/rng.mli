(** Deterministic pseudo-random numbers (splitmix64).

    All randomness in workloads, scenarios and experiments flows through
    this module with explicit seeds, so every experiment in
    EXPERIMENTS.md is exactly reproducible.  The generator is pure:
    every draw returns the advanced state. *)

type t

val make : int -> t
(** Seeded generator. *)

val of_int64 : int64 -> t

val next : t -> int64 * t
(** Raw 64-bit draw. *)

val int : t -> int -> int * t
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool * t

val float : t -> float * t
(** Uniform in [0, 1). *)

val below : t -> float -> bool * t
(** [below t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a * t
(** Uniform choice.  @raise Invalid_argument on an empty list. *)

val pick_weighted : t -> (int * 'a) list -> 'a * t
(** Choice proportional to integer weights.
    @raise Invalid_argument on empty input or non-positive total. *)

val split : t -> t * t
(** Two independent generators. *)

val shuffle : t -> 'a list -> 'a list * t
(** Fisher–Yates shuffle. *)
