(** The [vstamp trace] toolbox: record a run as a causal event DAG,
    reconstruct and replay the run from the DAG alone, and explain the
    relation between any two recorded states.

    Recording is deterministic (node steps are logical step counters, no
    wall clocks), so recording the same trace twice — or replaying a
    recorded DAG — produces byte-identical {!Vstamp_obs.Causal_trace}
    JSONL.  That byte-identity is the replay verdict. *)

val record :
  ?with_oracle:bool ->
  ?check_invariants:bool ->
  ?registry:Vstamp_obs.Registry.t ->
  ?sink:Vstamp_obs.Sink.t ->
  ?violation_out:string ->
  Tracker.packed ->
  Vstamp_core.Execution.op list ->
  Vstamp_obs.Causal_trace.t * System.result
(** Run the trace through {!System.run} with a fresh causal-trace
    recorder attached; returns the recorded DAG alongside the run
    result.  [with_oracle] defaults to [false] (forensics does not need
    accuracy scoring). *)

val ops_of_trace :
  Vstamp_obs.Causal_trace.t ->
  (Vstamp_core.Execution.op list, string) result
(** Reconstruct the positional op sequence that produced a recorded DAG
    by replaying its frontier head-ids: seeds form the initial frontier,
    each update/fork-pair/join node maps back to the op at the frontier
    position(s) its parents occupy.  Fails with a message on a DAG that
    no execution can have produced (orphan fork halves, parents not on
    the frontier, replica positions that disagree with the structure). *)

type replay_report = {
  ops : Vstamp_core.Execution.op list;  (** Reconstructed op sequence. *)
  replayed : Vstamp_obs.Causal_trace.t;  (** DAG recorded by the re-run. *)
  identical : bool;
      (** Whether the replayed DAG's JSONL is byte-identical to the
          original's — the replay verdict. *)
}

val replay :
  ?check_invariants:bool ->
  Tracker.packed ->
  Vstamp_obs.Causal_trace.t ->
  (replay_report, string) result
(** {!ops_of_trace}, then {!record} over the given tracker, then a
    byte-for-byte comparison of the two DAGs' JSONL. *)

(** {1 Explain} *)

val resolve : Vstamp_obs.Causal_trace.t -> string -> (int, string) result
(** Resolve a node selector: ["#7"] is node id 7; anything else selects
    the {e latest} node whose label equals the selector (stamps in paper
    notation, e.g. ["[1|01+1]"]). *)

type explanation = {
  a : Vstamp_obs.Causal_trace.node;
  b : Vstamp_obs.Causal_trace.node;
  relation : Vstamp_core.Relation.t;
      (** Causal-history relation derived purely from the DAG: which
          update events each state has absorbed.  By Proposition 5.1
          this coincides with the stamp order for coexisting replicas. *)
  meet : Vstamp_obs.Causal_trace.node option;
      (** Where the two lineages last shared state. *)
  only_a : Vstamp_obs.Causal_trace.node list;
      (** Update events in [a]'s history but not [b]'s, id order. *)
  only_b : Vstamp_obs.Causal_trace.node list;
  joins_a : Vstamp_obs.Causal_trace.node list;
      (** Join events on [a]'s side only — the synchronizations that
          folded [only_a]'s knowledge into [a], id order. *)
  joins_b : Vstamp_obs.Causal_trace.node list;
}

val explain :
  Vstamp_obs.Causal_trace.t ->
  string ->
  string ->
  (explanation, string) result
(** [explain t a b] names why the state selected by [a] relates to the
    one selected by [b] as it does: the update events one has and the
    other lacks, the fork point where their lineages diverged, and the
    join events that propagated knowledge. *)

val pp_explanation : Format.formatter -> explanation -> unit
(** Human-readable transcript, in the paper's obsolescence vocabulary. *)
