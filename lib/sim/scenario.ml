open Vstamp_core
open Vstamp_vv

(* --- Figure 1: three fixed replicas tracked by version vectors --- *)

module Fig1 = struct
  type step = { replica : string; vector : Version_vector.t }

  type t = {
    timeline : (string * step list) list;
        (* per replica, its successive vector values *)
    final : (string * Version_vector.t) list;
    relations : (string * string * Relation.t) list;
  }

  let run () =
    let a0 = Version_vector.Replica.create ~id:0 in
    let b0 = Version_vector.Replica.create ~id:1 in
    let c0 = Version_vector.Replica.create ~id:2 in
    (* A updates; A's state reaches B; A updates again;
       C updates; B and C synchronize. *)
    let a1 = Version_vector.Replica.update a0 in
    let a1', b1 = Version_vector.Replica.sync a1 b0 in
    let a2 = Version_vector.Replica.update a1' in
    let c1 = Version_vector.Replica.update c0 in
    let b2, c2 = Version_vector.Replica.sync b1 c1 in
    let v = Version_vector.Replica.vector in
    let step r x = { replica = r; vector = v x } in
    {
      timeline =
        [
          ("A", [ step "A" a0; step "A" a1; step "A" a1'; step "A" a2 ]);
          ("B", [ step "B" b0; step "B" b1; step "B" b2 ]);
          ("C", [ step "C" c0; step "C" c1; step "C" c2 ]);
        ];
      final = [ ("A", v a2); ("B", v b2); ("C", v c2) ];
      relations =
        [
          ("A", "B", Version_vector.Replica.relation a2 b2);
          ("B", "C", Version_vector.Replica.relation b2 c2);
          ("A", "C", Version_vector.Replica.relation a2 c2);
        ];
    }

  (* the vector values printed in the paper's figure, as [A;B;C] counters *)
  let expected_final = [ ("A", [ 2; 0; 0 ]); ("B", [ 1; 0; 1 ]); ("C", [ 1; 0; 1 ]) ]

  let matches_paper t =
    List.for_all2
      (fun (r, vec) (r', counters) ->
        r = r'
        && List.for_all2
             (fun id c -> Version_vector.get vec id = c)
             [ 0; 1; 2 ] counters)
      t.final expected_final
end

(* --- Figures 2 and 4: fork/join evolution and its version stamps --- *)

module Fig4 = struct
  (* a1 -u-> a2; a2 forks into b1 (id 0) and c1 (id 1); b1 forks into
     d1 (id 00) and e1 (id 01); c updates twice; f1 = join(e1, c);
     g1 = join(d1, f1). *)
  let trace =
    Execution.
      [ Update 0; Fork 0; Fork 0; Update 2; Update 2; Join (1, 2); Join (0, 1) ]

  type t = {
    named_steps : (string * Stamp.t) list;
    g_unreduced : Stamp.t;
    g_reduction_chain : Stamp.t list;
    final : Stamp.t;
  }

  let run () =
    let a1 = Stamp.seed in
    let a2 = Stamp.update a1 in
    let b1, c1 = Stamp.fork a2 in
    let d1, e1 = Stamp.fork b1 in
    let c2 = Stamp.update c1 in
    let c3 = Stamp.update c2 in
    let f1 = Stamp.join e1 c3 in
    let g_unreduced = Stamp.join ~reduce:false d1 f1 in
    (* the published rewrite chain: [1|00+01+1] -> [1|0+1] -> [eps|eps] *)
    let mid =
      let module N = Backend.Over_tree.Name in
      Stamp.make
        ~update:(N.of_strings [ "1" ])
        ~id:(N.of_strings [ "0"; "1" ])
    in
    let g = Stamp.join d1 f1 in
    {
      named_steps =
        [
          ("a1", a1);
          ("a2", a2);
          ("b1", b1);
          ("c1", c1);
          ("d1", d1);
          ("e1", e1);
          ("c2", c2);
          ("c3", c3);
          ("f1", f1);
          ("g1", g);
        ];
      g_unreduced;
      g_reduction_chain = [ g_unreduced; mid; g ];
      final = g;
    }

  let matches_paper t =
    let s name = List.assoc name t.named_steps in
    Stamp.to_string (s "f1") = "[1|01+1]"
    && Stamp.to_string t.g_unreduced = "[1|00+01+1]"
    && Stamp.equal t.final Stamp.seed

  (* frontier query from Section 1.2: c_2 relates to d/e-line elements *)
  let frontier_queries t =
    let s name = List.assoc name t.named_steps in
    [
      ("d1", "c3", Stamp.relation (s "d1") (s "c3"));
      ("d1", "e1", Stamp.relation (s "d1") (s "e1"));
      ("d1", "f1", Stamp.relation (s "d1") (s "f1"));
    ]
end

(* --- Figure 3: a fixed-vv run encoded under fork-and-join dynamics --- *)

module Fig3 = struct
  (* The Figure 1 run, twice: once over version-vector replicas with
     served ids, once over version stamps where every synchronization is
     a join followed by a fork.  The paper's claim is that the encodings
     induce the same frontier order. *)

  (* Build the stamp side explicitly so element identities are clear. *)
  let stamp_side () =
    let a0 = Stamp.seed in
    let a0, b0 = Stamp.fork a0 in
    let a0, c0 = Stamp.fork a0 in
    let a1 = Stamp.update a0 in
    let ab = Stamp.join a1 b0 in
    let a1', b1 = Stamp.fork ab in
    let a2 = Stamp.update a1' in
    let c1 = Stamp.update c0 in
    let bc = Stamp.join b1 c1 in
    let b2, c2 = Stamp.fork bc in
    [ ("A", a2); ("B", b2); ("C", c2) ]

  let vv_side () =
    let f1 = Fig1.run () in
    f1.Fig1.final

  type t = {
    stamps : (string * Stamp.t) list;
    vectors : (string * Version_vector.t) list;
    stamp_relations : (string * string * Relation.t) list;
    vv_relations : (string * string * Relation.t) list;
  }

  let relations rel side =
    let pairs = [ ("A", "B"); ("B", "C"); ("A", "C") ] in
    List.map
      (fun (x, y) -> (x, y, rel (List.assoc x side) (List.assoc y side)))
      pairs

  let run () =
    let stamps = stamp_side () in
    let vectors = vv_side () in
    {
      stamps;
      vectors;
      stamp_relations = relations Stamp.relation stamps;
      vv_relations = relations Version_vector.relation vectors;
    }

  let encodings_agree t =
    List.for_all2
      (fun (x, y, r) (x', y', r') -> x = x' && y = y' && Relation.equal r r')
      t.stamp_relations t.vv_relations
end

(* --- Figure 2's frontier notion: elements that never coexist --- *)

module Frontiers = struct
  (* Along the Fig. 2/4 trace, record every frontier; two elements are
     coexisting iff they appear in some common frontier.  Used by the
     docs and the CLI to illustrate why c2-vs-a1 queries are
     meaningless. *)
  let all_frontiers () = Execution.Run_stamps.run_steps Fig4.trace

  let frontier_sizes () = List.map List.length (all_frontiers ())
end
