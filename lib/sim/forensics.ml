open Vstamp_core
module CT = Vstamp_obs.Causal_trace

let record ?(with_oracle = false) ?check_invariants ?registry ?sink
    ?violation_out packed ops =
  let tr = CT.create () in
  let result =
    System.run ~with_oracle ?check_invariants ?registry ?sink ?violation_out
      ~trace:tr packed ops
  in
  (tr, result)

(* Reconstruction replays the frontier of node ids exactly as the
   recorder maintained it, so a well-formed DAG maps back to the unique
   op sequence that produced it. *)
let ops_of_trace tr =
  let err id msg = Error (Printf.sprintf "node #%d: %s" id msg) in
  let index_of heads p =
    let rec go k = function
      | [] -> None
      | h :: _ when h = p -> Some k
      | _ :: tl -> go (k + 1) tl
    in
    go 0 heads
  in
  let rec seeds rev_heads = function
    | ({ CT.kind = CT.Seed; _ } as n) :: rest ->
        seeds (n.CT.id :: rev_heads) rest
    | rest -> (List.rev rev_heads, rest)
  in
  let heads0, rest = seeds [] (CT.nodes tr) in
  if heads0 = [] then Error "empty trace: no seed node"
  else
    let rec go heads rev_ops = function
      | [] -> Ok (List.rev rev_ops)
      | { CT.kind = CT.Seed; id; _ } :: _ ->
          err id "seed node after the first operation"
      | ({ CT.kind = CT.Update; parents = [ p ]; _ } as n) :: rest -> (
          match index_of heads p with
          | None -> err n.CT.id "update parent is not a frontier head"
          | Some i ->
              if n.CT.replica <> i then
                err n.CT.id
                  (Printf.sprintf
                     "update applies at frontier position %d but recorded \
                      replica %d"
                     i n.CT.replica)
              else
                go
                  (List.mapi (fun k h -> if k = i then n.CT.id else h) heads)
                  (Execution.Update i :: rev_ops)
                  rest)
      | ({ CT.kind = CT.Fork_left; parents = [ p ]; _ } as l)
        :: ({ CT.kind = CT.Fork_right; parents = [ q ]; _ } as r)
        :: rest -> (
          if p <> q then err r.CT.id "fork halves disagree on their parent"
          else
            match index_of heads p with
            | None -> err l.CT.id "fork parent is not a frontier head"
            | Some i ->
                if l.CT.replica <> i || r.CT.replica <> i + 1 then
                  err l.CT.id
                    (Printf.sprintf
                       "fork at frontier position %d but recorded replicas \
                        (%d, %d)"
                       i l.CT.replica r.CT.replica)
                else
                  go
                    (Execution.fork_positions heads i ~left:l.CT.id
                       ~right:r.CT.id)
                    (Execution.Fork i :: rev_ops)
                    rest)
      | { CT.kind = CT.Fork_left; id; _ } :: _ ->
          err id "fork.l without an immediately following fork.r"
      | { CT.kind = CT.Fork_right; id; _ } :: _ ->
          err id "fork.r without a preceding fork.l"
      | ({ CT.kind = CT.Join; parents = [ p; q ]; _ } as n) :: rest -> (
          match (index_of heads p, index_of heads q) with
          | Some i, Some j when i <> j ->
              if n.CT.replica <> min i j then
                err n.CT.id
                  (Printf.sprintf
                     "join lands at frontier position %d but recorded replica \
                      %d"
                     (min i j) n.CT.replica)
              else
                go
                  (Execution.join_positions heads i j ~merged:n.CT.id)
                  (Execution.Join (i, j) :: rev_ops)
                  rest
          | _ -> err n.CT.id "join parents are not two distinct frontier heads")
      | { CT.id; _ } :: _ ->
          (* Parent arities are enforced by [Causal_trace.add], so this
             is unreachable on any trace built through the public API. *)
          err id "malformed node"
    in
    go heads0 [] rest

type replay_report = {
  ops : Execution.op list;
  replayed : CT.t;
  identical : bool;
}

let replay ?check_invariants packed tr =
  match ops_of_trace tr with
  | Error e -> Error e
  | Ok ops ->
      let replayed, _ = record ?check_invariants packed ops in
      Ok { ops; replayed; identical = CT.to_jsonl replayed = CT.to_jsonl tr }

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let resolve tr sel =
  let fail msg = Error (Printf.sprintf "%S: %s" sel msg) in
  if String.length sel > 1 && sel.[0] = '#' then
    match int_of_string_opt (String.sub sel 1 (String.length sel - 1)) with
    | None -> fail "malformed node id (expected #<number>)"
    | Some id -> (
        match CT.node tr id with
        | Some _ -> Ok id
        | None -> fail "no such node id")
  else
    match CT.find_by_label tr sel with
    | Some id -> Ok id
    | None -> fail "no recorded state carries this label"

type explanation = {
  a : CT.node;
  b : CT.node;
  relation : Relation.t;
  meet : CT.node option;
  only_a : CT.node list;
  only_b : CT.node list;
  joins_a : CT.node list;
  joins_b : CT.node list;
}

module Int_set = Set.Make (Int)

let explain tr sel_a sel_b =
  match (resolve tr sel_a, resolve tr sel_b) with
  | Error e, _ | _, Error e -> Error e
  | Ok ia, Ok ib ->
      let anc_a = CT.ancestors tr ia and anc_b = CT.ancestors tr ib in
      let set_a = Int_set.of_list anc_a and set_b = Int_set.of_list anc_b in
      let node_exn id =
        match CT.node tr id with Some n -> n | None -> assert false
      in
      (* Exclusive events of one side: ancestors absent from the other
         side's history, filtered by kind, in id (= causal) order. *)
      let exclusive keep ids others =
        List.filter_map
          (fun id ->
            if Int_set.mem id others then None
            else
              let n = node_exn id in
              if keep n.CT.kind then Some n else None)
          ids
      in
      let is_update = function CT.Update -> true | _ -> false in
      let is_join = function CT.Join -> true | _ -> false in
      let only_a = exclusive is_update anc_a set_b
      and only_b = exclusive is_update anc_b set_a in
      Ok
        {
          a = node_exn ia;
          b = node_exn ib;
          (* Causal-history inclusion, straight off the DAG: A <= B iff
             B has absorbed every update event A has (Prop. 5.1 makes
             this the stamp order for coexisting replicas). *)
          relation =
            Relation.of_leq_pair ~leq_ab:(only_a = []) ~leq_ba:(only_b = []);
          meet = Option.map node_exn (CT.latest_common_ancestor tr ia ib);
          only_a;
          only_b;
          joins_a = exclusive is_join anc_a set_b;
          joins_b = exclusive is_join anc_b set_a;
        }

(* The label is stamp notation and may hold UTF-8 (ε), so no [%S]. *)
let pp_node ppf (n : CT.node) =
  Format.fprintf ppf "#%d %s %s (step %d, replica %d)" n.CT.id
    (CT.kind_to_string n.CT.kind)
    n.CT.label n.CT.step n.CT.replica

let pp_explanation ppf e =
  let pp_list header ppf = function
    | [] -> Format.fprintf ppf "%s: none@," header
    | ns ->
        Format.fprintf ppf "%s:@," header;
        List.iter (fun n -> Format.fprintf ppf "  %a@," pp_node n) ns
  in
  let verdict =
    match e.relation with
    | Relation.Equal -> "A and B are equivalent (same causal history)"
    | Relation.Dominates -> "A dominates B: B is obsolete"
    | Relation.Dominated -> "A is obsolete: B dominates it"
    | Relation.Concurrent ->
        "A and B are mutually inconsistent (concurrent updates)"
  in
  Format.fprintf ppf "@[<v>A = %a@,B = %a@,verdict: %s@," pp_node e.a pp_node
    e.b verdict;
  (match e.meet with
  | Some m -> Format.fprintf ppf "last shared state: %a@," pp_node m
  | None -> Format.fprintf ppf "last shared state: none@,");
  pp_list "updates seen by A only" ppf e.only_a;
  pp_list "updates seen by B only" ppf e.only_b;
  pp_list "joins folding knowledge into A" ppf e.joins_a;
  pp_list "joins folding knowledge into B" ppf e.joins_b;
  Format.fprintf ppf "@]"
