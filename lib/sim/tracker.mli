(** Uniform interface over every update-tracking mechanism.

    The simulator runs the same {!Vstamp_core.Execution.op} traces over
    each mechanism and compares sizes and answers.  [state] threads the
    mechanism's global resource: nothing for version stamps, a fresh-event
    generator for the oracle, an id allocator for vector-based baselines
    (granted here as a perfectly available central counter; its
    {e unavailability} under partition is modelled by {!Partition} and
    {!Vstamp_vv.Id_source}). *)

module type S = sig
  type t

  type state

  val name : string

  val initial : state * t

  val update : state -> t -> state * t

  val fork : state -> t -> state * (t * t)

  val join : state -> t -> t -> state * t

  val leq : t -> t -> bool
  (** The mechanism's frontier order; accuracy is judged against the
      causal-history oracle. *)

  val size_bits : t -> int
  (** Wire-size estimate of one replica's tracking data. *)

  val invariants : t list -> Vstamp_core.Invariants.violation list
  (** Structural self-check of a whole frontier — the mechanism's
      executable invariants (I1–I3 for version stamps), with positional
      witnesses.  [[]] when they hold or when the mechanism has none;
      consumed by the {!Vstamp_obs.Monitor} wiring in [System.run]. *)

  val pp : Format.formatter -> t -> unit
end

type packed = Packed : (module S with type t = 'a and type state = 'b) -> packed

val name : packed -> string

(** One stamp adapter for every name backend: the [Stamps*] modules
    below are instantiations.  [name] is the tracker's display name,
    [reduce] selects the Section 6 normal-form join (the Section 4
    non-reducing model when [false]). *)
module Of_stamp (B : sig
  val name : string

  val reduce : bool

  include Vstamp_core.Backend.S
end) : S with type t = B.Stamp.t and type state = unit

module Stamps : S with type t = Vstamp_core.Stamp.t and type state = unit

module Stamps_nonreducing :
  S with type t = Vstamp_core.Stamp.t and type state = unit

module Stamps_list :
  S with type t = Vstamp_core.Stamp.Over_list.t and type state = unit

module Stamps_packed :
  S with type t = Vstamp_core.Stamp.Over_packed.t and type state = unit

module Histories :
  S
    with type t = Vstamp_core.Causal_history.t
     and type state = Vstamp_core.Causal_history.Gen.t

module Vv :
  S with type t = Vstamp_vv.Version_vector.Replica.t and type state = int

module Dvv : S with type t = Vstamp_vv.Dynamic_vv.t and type state = int

module Plausible (_ : sig
  val size : int
end) : S with type t = Vstamp_vv.Plausible_clock.t * int and type state = int

val stamps : packed

val stamps_nonreducing : packed

val stamps_list : packed

val stamps_packed : packed

val of_backend : ?reduce:bool -> name:string -> (module Vstamp_core.Backend.S) -> packed
(** A stamp tracker over any backend value ([reduce] defaults to
    [true]); use for backends registered by third parties. *)

val of_registry : unit -> packed list
(** One stamp tracker per backend in {!Vstamp_core.Backend.entries}
    order; the default backend keeps the bare name ["stamps"], the
    others are named ["stamps-<key>"]. *)

val stamp_tracker_name : string -> string
(** The tracker name for a registry key (["stamps"] /
    ["stamps-<key>"]). *)

val histories : packed

val version_vectors : packed

val dynamic_vv : packed

val plausible : int -> packed
(** Plausible clocks with the given slot count. *)

val all : packed list
(** Every tracker, for sweep experiments. *)

val with_metrics : ?registry:Vstamp_obs.Registry.t -> packed -> packed
(** Same tracker, with every [update]/[fork]/[join]/[leq] timed into
    [tracker_op_ns{tracker=...,op=...}] histograms of the registry
    (default {!Vstamp_obs.Registry.default}). *)
