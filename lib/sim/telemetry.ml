open Vstamp_core
open Vstamp_obs

let observer registry ev =
  let opname = Instr.op_kind_to_string ev.Instr.op in
  Metric.inc
    (Registry.counter registry
       (Printf.sprintf "core_stamp_ops_total{op=%S}" opname));
  Metric.observe_int
    (Registry.histogram registry
       (Printf.sprintf "core_stamp_bits{op=%S}" opname))
    ev.Instr.bits_after;
  Metric.observe_int (Registry.histogram registry "core_stamp_depth")
    ev.Instr.depth;
  Metric.observe_int (Registry.histogram registry "core_stamp_id_width")
    ev.Instr.width

let attach ?(registry = Registry.default) () =
  Instr.set_observer (Some (observer registry));
  Instr.enabled := true

let detach () =
  Instr.enabled := false;
  Instr.set_observer None

let counter_fields () =
  let c = Instr.read () in
  [
    ("updates", c.Instr.updates);
    ("forks", c.Instr.forks);
    ("joins", c.Instr.joins);
    ("reduces", c.Instr.reduces);
    ("reduce_rewrites", c.Instr.reduce_rewrites);
    ("reduce_bits_saved", c.Instr.reduce_bits_saved);
    ("wire_stamps_encoded", c.Instr.wire_stamps_encoded);
    ("wire_bytes_encoded", c.Instr.wire_bytes_encoded);
    ("wire_stamps_decoded", c.Instr.wire_stamps_decoded);
    ("wire_bytes_decoded", c.Instr.wire_bytes_decoded);
  ]

let sync_counters registry =
  List.iter
    (fun (name, v) ->
      Metric.set
        (Registry.gauge registry (Printf.sprintf "core_%s" name))
        (float_of_int v))
    (counter_fields ())

let violation_to_json v =
  let tag, at =
    match v with
    | Invariants.I1 i -> ("I1", [ i ])
    | Invariants.I2 (i, j) -> ("I2", [ i; j ])
    | Invariants.I3 (i, j) -> ("I3", [ i; j ])
  in
  Jsonx.Obj
    [
      ("invariant", Jsonx.String tag);
      ("at", Jsonx.List (List.map (fun i -> Jsonx.Int i) at));
    ]

let violation_witness ~violations ~order_failures =
  let vs =
    match violations with
    | [] -> []
    | vs -> [ ("violations", Jsonx.List (List.map violation_to_json vs)) ]
  in
  let os =
    match order_failures with
    | [] -> []
    | ps ->
        [
          ( "order_failures",
            Jsonx.List (List.map (fun i -> Jsonx.Int i) ps) );
        ]
  in
  vs @ os

let counters_event ?step () =
  let ts =
    match step with Some k -> Event.Step k | None -> Event.Untimed
  in
  Event.v ~ts "core.counters"
    (List.map (fun (k, v) -> (k, Jsonx.Int v)) (counter_fields ()))
