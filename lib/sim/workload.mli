(** Trace generators for the experiments.

    Every generator is deterministic in its [seed] and produces a valid
    {!Vstamp_core.Execution.op} trace (playable from the single-element
    initial frontier).  Synchronization of two live replicas is encoded
    as the paper prescribes: a join immediately followed by a fork. *)

type weights = { update : int; fork : int; join : int }

val default_weights : weights
(** [3 / 2 / 2]. *)

val uniform :
  ?seed:int ->
  ?weights:weights ->
  ?max_frontier:int ->
  n_ops:int ->
  unit ->
  Vstamp_core.Execution.op list
(** Independent weighted draws; the frontier stays within
    [1, max_frontier] (default 16). *)

val deep_fork :
  ?update_between:bool -> depth:int -> unit -> Vstamp_core.Execution.op list
(** Join-free growth: repeatedly fork the newest replica ([depth] times),
    updating it first when [update_between] (default [true]).  Worst case
    for version-stamp id depth; version vectors grow one entry per
    fork. *)

val sync_star :
  ?updates_per_round:int ->
  peers:int ->
  rounds:int ->
  unit ->
  Vstamp_core.Execution.op list
(** The classic fixed-replica-set setting (paper Figures 1 and 3): a hub
    and [peers] satellites; each round every peer updates then syncs with
    the hub.  Join-heavy — version stamps stay small here. *)

val gossip :
  ?seed:int ->
  ?p_update:float ->
  replicas:int ->
  rounds:int ->
  unit ->
  Vstamp_core.Execution.op list
(** Fixed frontier of [replicas]; each round every replica updates with
    probability [p_update] and one random pair syncs. *)

val churn :
  ?seed:int ->
  ?p_update:float ->
  target:int ->
  n_ops:int ->
  unit ->
  Vstamp_core.Execution.op list
(** Constant replica creation and retirement pressure around a [target]
    frontier size — the dynamic setting version stamps are designed
    for. *)

val partitioned :
  ?seed:int ->
  ?p_update:float ->
  replicas:int ->
  groups:int ->
  phases:int ->
  syncs_per_phase:int ->
  unit ->
  Vstamp_core.Execution.op list
(** Alternating partition and heal phases: during odd phases only
    replicas whose label falls in the same of [groups] groups may sync;
    even phases allow any pair.  Models the paper's mobile scenario.
    @raise Invalid_argument unless [replicas >= 2 * groups]. *)

val all_named : n_ops:int -> (string * Vstamp_core.Execution.op list) list
(** One representative trace per family, sized by [n_ops], for sweep
    experiments. *)
