let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let max_int_list = function [] -> 0 | x :: xs -> List.fold_left max x xs

let min_int_list = function [] -> 0 | x :: xs -> List.fold_left min x xs

let sum_int = List.fold_left ( + ) 0

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n /. 100.)) - 1 in
      let rank = max 0 (min (n - 1) rank) in
      List.nth sorted rank

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : int;
}

let summary xs =
  let h = Vstamp_obs.Metric.histogram () in
  List.iter (Vstamp_obs.Metric.observe_int h) xs;
  let p = Vstamp_obs.Metric.percentiles h in
  {
    n = List.length xs;
    mean = Vstamp_obs.Metric.mean h;
    p50 = p.Vstamp_obs.Metric.p50;
    p95 = p.Vstamp_obs.Metric.p95;
    p99 = p.Vstamp_obs.Metric.p99;
    max = max_int_list xs;
  }

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(* display width in codepoints, so UTF-8 glyphs align *)
let display_width s =
  let w = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr w) s;
  !w

let pp_table ppf ~header rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (display_width cell)) acc row)
      (List.map display_width header)
      rows
  in
  let print_row row =
    Format.fprintf ppf "| %s |@."
      (String.concat " | "
         (List.map2
            (fun w cell -> cell ^ String.make (w - display_width cell) ' ')
            widths row))
  in
  print_row header;
  Format.fprintf ppf "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows
