open Vstamp_core

(* ASCII rendering of an execution in the spirit of the paper's Figure 2:
   one column per step, one row per replica lineage.  Forks open a new
   row for the right child, joins retire the higher row into the lower
   one; updates are marked with '*' (the paper's dotted arrows).

   Row bookkeeping mirrors the positional semantics: each frontier
   position maps to the display row currently carrying that replica. *)

type cell =
  | Blank
  | Pass  (* lineage continues: "--" *)
  | Star  (* update *)
  | Fork_parent
  | Fork_child
  | Join_survivor
  | Join_retired

type canvas = {
  mutable rows : int;
  cells : (int * int, cell) Hashtbl.t;  (* (row, column) -> cell *)
  mutable labels : (int * int * string) list;  (* row, column, text *)
}

let set canvas row col cell = Hashtbl.replace canvas.cells (row, col) cell

let render_ops ?stamps ops =
  let canvas = { rows = 1; cells = Hashtbl.create 64; labels = [] } in
  let columns = List.length ops + 1 in
  (* rows.(i) = display row of frontier position i *)
  let rows = ref [ 0 ] in
  (* the initial replica exists at the start column *)
  set canvas 0 0 Pass;
  let pass col =
    List.iter (fun r -> set canvas r col Pass) !rows
  in
  List.iteri
    (fun step op ->
      let col = step + 1 in
      pass col;
      match op with
      | Execution.Update i ->
          set canvas (List.nth !rows i) col Star
      | Execution.Fork i ->
          let parent_row = List.nth !rows i in
          let child_row = canvas.rows in
          canvas.rows <- canvas.rows + 1;
          set canvas parent_row col Fork_parent;
          set canvas child_row col Fork_child;
          rows :=
            Execution.fork_positions !rows i ~left:parent_row ~right:child_row
      | Execution.Join (i, j) ->
          let ri = List.nth !rows i and rj = List.nth !rows j in
          let survivor = min ri rj and retired = max ri rj in
          set canvas survivor col Join_survivor;
          set canvas retired col Join_retired;
          rows := Execution.join_positions !rows i j ~merged:survivor)
    ops;
  (* final stamps as labels at the last column *)
  (match stamps with
  | Some frontier ->
      List.iteri
        (fun i s ->
          canvas.labels <-
            (List.nth !rows i, columns, Stamp.to_string s) :: canvas.labels)
        frontier
  | None -> ());
  (canvas, columns)

let cell_text = function
  | Blank -> "    "
  | Pass -> "----"
  | Star -> "--*-"
  | Fork_parent -> "--+<"
  | Fork_child -> "  `-"
  | Join_survivor -> "--+-"
  | Join_retired -> "--'."

(* rows absent from the frontier at a column simply have no cell there,
   so lineages are blank before their birth and after their retirement *)
let to_string ?stamps ops =
  let canvas, columns = render_ops ?stamps ops in
  let buf = Buffer.create 256 in
  for row = 0 to canvas.rows - 1 do
    for col = 0 to columns - 1 do
      let cell =
        match Hashtbl.find_opt canvas.cells (row, col) with
        | Some c -> c
        | None -> Blank
      in
      Buffer.add_string buf (cell_text cell)
    done;
    List.iter
      (fun (r, _, label) ->
        if r = row then begin
          Buffer.add_string buf "  ";
          Buffer.add_string buf label
        end)
      canvas.labels;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let header ops =
  let titles =
    "start" :: List.map Execution.op_to_string ops
  in
  String.concat " " titles

let draw ?with_stamps ops =
  let stamps =
    match with_stamps with
    | Some true -> Some (Execution.Run_stamps.run ops)
    | _ -> None
  in
  to_string ?stamps ops

(* Graphviz rendering goes through the causal-trace recorder so the DOT
   view and the [vstamp trace] forensics agree on structure and labels;
   escaping lives in [Causal_trace.to_dot]. *)
let to_dot ops =
  let tr, _ = Forensics.record Tracker.stamps ops in
  Vstamp_obs.Causal_trace.to_dot tr
