(** Network partitions over an evolving frontier.

    A partition assigns every frontier position to a group; replicas can
    only join (synchronize) within their group — the paper's partitioned
    mode of operation.  The assignment is mirrored through the same
    positional semantics as {!Vstamp_core.Execution}, so it stays aligned
    with any frontier produced from the same trace.  Forked children are
    born into their parent's group; a join's result lives in the
    operands' (necessarily common) group. *)

type t

val initial : t
(** Single replica, group 0. *)

val of_groups : int list -> t
(** Explicit assignment, one group per frontier position. *)

val groups : t -> int list

val group_of : t -> int -> int

val size : t -> int

val apply : t -> Vstamp_core.Execution.op -> t
(** Mirror one operation. *)

val apply_trace : t -> Vstamp_core.Execution.op list -> t

val positions_in : t -> int -> int list
(** Frontier positions currently in a group. *)

val same_group : t -> int -> int -> bool

val op_allowed : t -> Vstamp_core.Execution.op -> bool
(** Updates and forks are always local; joins require a common group. *)

val regroup : t -> int list -> t
(** Replace the assignment (a partition change / heal).
    @raise Invalid_argument if the arity differs from the frontier. *)

val round_robin : groups:int -> int -> int list
(** Assignment scattering [n] positions over [groups] groups.
    @raise Invalid_argument if [groups <= 0]. *)

val merge_all : t -> t
(** Heal: everyone into group 0. *)

val group_count : t -> int

val pp : Format.formatter -> t -> unit
