open Vstamp_core

(* Distributed synchronization by identity handoff.

   A node that wants to sync sends its whole replica (wire-encoded stamp
   plus its history mirror) to the peer and retires locally; the peer
   joins, forks, keeps one half and returns the other; the initiator
   adopts the returned half.  While the initiator waits it performs no
   updates — its identity is in flight.  Messages may be delayed and
   reordered arbitrarily; they are never duplicated or dropped (the
   mechanism, like version vectors, needs a reliable transport for
   replica hand-off; loss tolerance is an orthogonal concern). *)

type node_state =
  | Idle of Stamp.t * Causal_history.t
  | Waiting  (* identity in flight towards a peer *)

type message =
  | Sync_request of { from : int; stamp_wire : string; history : Causal_history.t }
  | Sync_reply of { stamp_wire : string; history : Causal_history.t }

type t = {
  nodes : node_state array;
  inflight : (int * message) list;  (* destination, payload *)
  gen : Causal_history.Gen.t;
  delivered : int;
  updates : int;
  syncs_started : int;
}

exception Protocol_error of string

let decode wire =
  match Vstamp_codec.Wire.stamp_of_string wire with
  | Ok s -> s
  | Error e ->
      raise
        (Protocol_error (Format.asprintf "bad stamp on the wire: %a"
                           Vstamp_codec.Wire.pp_error e))

let create ~nodes:n =
  if n < 1 then invalid_arg "Network.create: need at least one node";
  (* the initial replica is forked out locally, node 0 holding the first *)
  let stamps = Stamp.fork_many Stamp.seed n in
  {
    nodes =
      Array.of_list (List.map (fun s -> Idle (s, Causal_history.empty)) stamps);
    inflight = [];
    gen = Causal_history.Gen.initial;
    delivered = 0;
    updates = 0;
    syncs_started = 0;
  }

let node_count t = Array.length t.nodes

let is_idle t i =
  match t.nodes.(i) with Idle _ -> true | Waiting -> false

let stamp_of t i =
  match t.nodes.(i) with Idle (s, _) -> Some s | Waiting -> None

let history_of t i =
  match t.nodes.(i) with Idle (_, h) -> Some h | Waiting -> None

let inflight_count t = List.length t.inflight

let quiescent t =
  t.inflight = [] && Array.for_all (function Idle _ -> true | Waiting -> false) t.nodes

let update t i =
  match t.nodes.(i) with
  | Waiting -> None
  | Idle (s, h) ->
      let e, gen = Causal_history.Gen.fresh t.gen in
      let nodes = Array.copy t.nodes in
      nodes.(i) <- Idle (Stamp.update s, Causal_history.add_event e h);
      Some { t with nodes; gen; updates = t.updates + 1 }

let start_sync t ~from ~target =
  if from = target then invalid_arg "Network.start_sync: self sync";
  match t.nodes.(from) with
  | Waiting -> None
  | Idle (s, h) ->
      let nodes = Array.copy t.nodes in
      nodes.(from) <- Waiting;
      let msg =
        Sync_request
          { from; stamp_wire = Vstamp_codec.Wire.stamp_to_string s; history = h }
      in
      Some
        {
          t with
          nodes;
          inflight = (target, msg) :: t.inflight;
          syncs_started = t.syncs_started + 1;
        }

(* Deliver the k-th in-flight message (k indexes the current list —
   callers pick it from an Rng to model arbitrary reordering). *)
let deliver t k =
  match List.nth_opt t.inflight k with
  | None -> None
  | Some (dst, msg) ->
      let inflight = List.filteri (fun i _ -> i <> k) t.inflight in
      let nodes = Array.copy t.nodes in
      let t = { t with inflight; delivered = t.delivered + 1 } in
      (match (msg, nodes.(dst)) with
      | Sync_request { from; stamp_wire; history }, Idle (s, h) ->
          let incoming = decode stamp_wire in
          let joined = Stamp.join s incoming in
          let mine, theirs = Stamp.fork joined in
          let merged_history = Causal_history.union h history in
          nodes.(dst) <- Idle (mine, merged_history);
          let reply =
            Sync_reply
              {
                stamp_wire = Vstamp_codec.Wire.stamp_to_string theirs;
                history = merged_history;
              }
          in
          Some { t with nodes; inflight = (from, reply) :: t.inflight }
      | Sync_request { from; stamp_wire; history }, Waiting ->
          (* the peer's identity is itself in flight: bounce the replica
             straight back to its owner (a refused sync), which keeps the
             system deadlock-free when two nodes request each other *)
          let bounce = Sync_reply { stamp_wire; history } in
          Some { t with inflight = (from, bounce) :: t.inflight }
      | Sync_reply { stamp_wire; history }, Waiting ->
          nodes.(dst) <- Idle (decode stamp_wire, history);
          Some { t with nodes }
      | Sync_reply _, Idle _ ->
          raise (Protocol_error "reply delivered to a node that is not waiting"))

(* --- random driver --- *)

type schedule = { p_update : float; p_sync : float }

let default_schedule = { p_update = 0.45; p_sync = 0.25 }

let step ?(schedule = default_schedule) rng t =
  let n = node_count t in
  let roll, rng = Rng.float rng in
  if roll < schedule.p_update then
    let i, rng = Rng.int rng n in
    match update t i with Some t' -> (t', rng) | None -> (t, rng)
  else if roll < schedule.p_update +. schedule.p_sync && n >= 2 then
    let i, rng = Rng.int rng n in
    let j0, rng = Rng.int rng (n - 1) in
    let j = if j0 >= i then j0 + 1 else j0 in
    match start_sync t ~from:i ~target:j with
    | Some t' -> (t', rng)
    | None -> (t, rng)
  else if inflight_count t > 0 then
    let k, rng = Rng.int rng (inflight_count t) in
    match deliver t k with Some t' -> (t', rng) | None -> (t, rng)
  else (t, rng)

let drain t =
  let rec go t guard =
    if guard = 0 then raise (Protocol_error "drain did not terminate")
    else if inflight_count t = 0 then t
    else
      match deliver t 0 with
      | Some t' -> go t' (guard - 1)
      | None -> t
  in
  go t (1000 + (inflight_count t * 4))

let run ?schedule ~seed ~steps ~nodes () =
  let rec go rng t k =
    if k = 0 then drain t
    else
      let t, rng = step ?schedule rng t in
      go rng t (k - 1)
  in
  go (Rng.make seed) (create ~nodes) steps

(* --- whole-network checks --- *)

let live_pairs t =
  let pairs = ref [] in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          match (si, sj) with
          | Idle (a, ha), Idle (b, hb) when i <> j ->
              pairs := ((a, ha), (b, hb)) :: !pairs
          | _ -> ())
        t.nodes)
    t.nodes;
  !pairs

let consistent_with_oracle t =
  List.for_all
    (fun ((a, ha), (b, hb)) ->
      Stamp.leq a b = Causal_history.subset ha hb)
    (live_pairs t)

let frontier t =
  Array.to_list t.nodes
  |> List.filter_map (function Idle (s, _) -> Some s | Waiting -> None)

let total_bits t =
  List.fold_left (fun acc s -> acc + Stamp.size_bits s) 0 (frontier t)

let stats t = (t.updates, t.syncs_started, t.delivered)
