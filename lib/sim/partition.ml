open Vstamp_core

type t = int list
(* Group of each frontier position, mirrored through the positional
   semantics of {!Execution}. *)

let initial = [ 0 ]

let of_groups gs = gs

let groups t = t

let group_of t i = List.nth t i

let size = List.length

let apply t op =
  match op with
  | Execution.Update _ -> t
  | Execution.Fork i ->
      (* the child replica is born where its parent lives *)
      let g = List.nth t i in
      Execution.fork_positions t i ~left:g ~right:g
  | Execution.Join (i, j) ->
      Execution.join_positions t i j ~merged:(List.nth t i)

let apply_trace t ops = List.fold_left apply t ops

let positions_in t g =
  List.mapi (fun i g' -> (i, g')) t
  |> List.filter_map (fun (i, g') -> if g = g' then Some i else None)

let same_group t i j = group_of t i = group_of t j

let op_allowed t = function
  | Execution.Update _ | Execution.Fork _ -> true
  | Execution.Join (i, j) -> same_group t i j

let regroup t assignment =
  if List.length assignment <> List.length t then
    invalid_arg "Partition.regroup: arity mismatch"
  else assignment

let round_robin ~groups n =
  if groups <= 0 then invalid_arg "Partition.round_robin: groups must be positive";
  List.init n (fun i -> i mod groups)

let merge_all t = List.map (fun _ -> 0) t

let group_count t = List.length (List.sort_uniq compare t)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';')
       Format.pp_print_int)
    t
