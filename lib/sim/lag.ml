module H = Vstamp_core.Causal_history
module Conv = Vstamp_obs.Convergence
module Engine = Vstamp_sync.Engine
module Ledger = Vstamp_sync.Ledger

type config = {
  replicas : int;
  rounds : int;
  p_update : float;
  syncs_per_round : int;
  severity : float;
  seed : int;
  epoch : int;
  max_heal_rounds : int;
}

let default_config =
  {
    replicas = 3;
    rounds = 12;
    p_update = 0.5;
    syncs_per_round = 2;
    severity = 0.6;
    seed = 42;
    epoch = 4;
    max_heal_rounds = 8;
  }

type round_obs = {
  round : int;
  phase : [ `Active | `Heal ];
  lag : int array;
  width : int;
  entropy : float;
  converged_now : bool;
}

type result = {
  replicas : int;
  updates : int;
  syncs : int;
  blocked_syncs : int;
  active_rounds : int;
  heal_rounds : int;
  converged : bool;
  convergence : (int64 * int) option;
  peak_width : int;
  peak_lag : int;
  mean_lag : float;
  peak_entropy : float;
  divergence : Conv.matrix;
  final : Conv.matrix;
  shipped_bytes : int;
  minimal_bytes : int;
  redundant_bytes : int;
  delta_efficiency : float;
}

let bytes_of_bits b = (b + 7) / 8

let run ?registry ?on_round (cfg : config) (Tracker.Packed (module T)) =
  if cfg.replicas < 2 then invalid_arg "Lag.run: need at least 2 replicas";
  let module Tr = Vstamp_obs.Trace_ctx in
  let module J = Vstamp_obs.Jsonx in
  Tr.with_span "lag.run"
    ~attrs:
      [
        ("tracker", J.String T.name);
        ("replicas", J.Int cfg.replicas);
        ("rounds", J.Int cfg.rounds);
      ]
  @@ fun () ->
  (* Each run starts its trackers from the seed, so stamp labels from
     different runs share no causal context even though they are
     formally comparable: scope the labels to this run's span id and
     {!Trace_merge} will only order spans within the scope. *)
  let sync_domain =
    match Tr.current () with
    | Some c -> Some c.Tr.span_id
    | None -> None
  in
  let n = cfg.replicas in
  let weather =
    Weather.make ~seed:cfg.seed ~epoch:cfg.epoch ~severity:cfg.severity ()
  in
  let state = ref (fst T.initial) in
  (* fork the seed into a fixed frontier, so position [i] is the stable
     [replica="i"] of the published gauges *)
  let replicas = Array.make n (snd T.initial) in
  for i = 1 to n - 1 do
    let st, (a, b) = T.fork !state replicas.(i - 1) in
    state := st;
    replicas.(i - 1) <- a;
    replicas.(i) <- b
  done;
  (* the causal-history oracle, in lockstep (fork duplicates, update
     adds a fresh event, sync unions — Definition 2.1) *)
  let hists = Array.make n H.empty in
  let gen = ref H.Gen.initial in
  let timer = Conv.Timer.create () in
  let step = ref 0 in
  let updates = ref 0 in
  let syncs = ref 0 in
  let blocked = ref 0 in
  let tally = Ledger.create () in
  let rng = ref (Rng.make cfg.seed) in
  let draw f =
    let v, rng' = f !rng in
    rng := rng';
    v
  in
  let update i =
    incr step;
    incr updates;
    let st, x = T.update !state replicas.(i) in
    state := st;
    replicas.(i) <- x;
    let e, g = H.Gen.fresh !gen in
    gen := g;
    hists.(i) <- H.add_event e hists.(i);
    Conv.Timer.note_write timer ~step:!step
  in
  let sync_body i j =
    incr step;
    incr syncs;
    let a = replicas.(i) and b = replicas.(j) in
    (* delta ledger: a full-state exchange ships both sides; a
       frontier-exchange protocol ships only what the other side
       misses.  The split is the engine's unified formula with a
       stamp-only charge (the simulation moves no payload). *)
    let relation =
      match Conv.classify ~leq_ab:(T.leq a b) ~leq_ba:(T.leq b a) with
      | Conv.Equal -> Vstamp_core.Relation.Equal
      | Conv.Dominates -> Vstamp_core.Relation.Dominates
      | Conv.Dominated -> Vstamp_core.Relation.Dominated
      | Conv.Concurrent -> Vstamp_core.Relation.Concurrent
    in
    let charge =
      {
        Engine.meta_a = bytes_of_bits (T.size_bits a);
        meta_b = bytes_of_bits (T.size_bits b);
        payload = 0;
      }
    in
    let shipped, minimal =
      Engine.delta (Engine.outcome_of_relation relation) charge
    in
    Ledger.add tally ~shipped ~minimal;
    (* paper-style synchronization of two live replicas: join then fork *)
    let st, joined = T.join !state a b in
    let st, (a', b') = T.fork st joined in
    state := st;
    replicas.(i) <- a';
    replicas.(j) <- b';
    let u = H.union hists.(i) hists.(j) in
    hists.(i) <- u;
    hists.(j) <- u;
    joined
  in
  (* Every sync round is a span carrying the joined state's stamp
     label: after join-then-fork both replicas' histories are exactly
     the joined one, so the label places the round in the causal
     order by stamp [leq] alone — the merge needs no clocks. *)
  let sync i j =
    if not (Tr.attached ()) then ignore (sync_body i j)
    else
      Tr.with_span "lag.sync" ?domain:sync_domain
        ~attrs:[ ("i", J.Int i); ("j", J.Int j) ]
        (fun () ->
          let joined = sync_body i j in
          Tr.set_stamp (Format.asprintf "%a" T.pp joined))
  in
  let lag_sum = ref 0. in
  let rounds_seen = ref 0 in
  let peak_width = ref 1 in
  let peak_lag = ref 0 in
  let peak_entropy = ref 0. in
  (* counters accumulate across runs sharing a registry (the soak
     driver re-runs the scenario every iteration), so publish only the
     growth since the last publication of this run *)
  let publisher =
    Option.map
      (fun reg -> Ledger.publisher ~registry:reg ~prefix:"sim_sync_" ())
      registry
  in
  let publish_delta () =
    match publisher with
    | None -> ()
    | Some p -> Ledger.publish p tally
  in
  let observe ~round ~phase =
    let m = Conv.matrix ~leq:T.leq replicas in
    let lag =
      Conv.staleness ~union:H.union ~cardinal:H.cardinal
        (Array.to_list hists)
    in
    let max_lag = Array.fold_left max 0 lag in
    (* converged = the oracle says every replica knows everything AND
       the mechanism's own order agrees (for accurate trackers these
       coincide; a divergence here would itself be a finding) *)
    let conv_now = max_lag = 0 && Conv.converged m in
    Conv.Timer.note_check timer ~step:!step ~converged:conv_now;
    incr rounds_seen;
    lag_sum :=
      !lag_sum
      +. (if n = 0 then 0.
          else
            float_of_int (Array.fold_left ( + ) 0 lag) /. float_of_int n);
    peak_width := max !peak_width (Conv.width m);
    peak_lag := max !peak_lag max_lag;
    peak_entropy := Float.max !peak_entropy (Conv.entropy m);
    (match registry with
    | None -> ()
    | Some reg ->
        Conv.publish_matrix ~registry:reg m;
        Conv.publish_lag ~registry:reg lag;
        Conv.Timer.publish ~registry:reg timer;
        publish_delta ());
    (match on_round with
    | None -> ()
    | Some f ->
        f
          {
            round;
            phase;
            lag;
            width = Conv.width m;
            entropy = Conv.entropy m;
            converged_now = conv_now;
          });
    (m, conv_now)
  in
  (* --- active phase: writes and weathered syncs --- *)
  let last_active = ref (Conv.matrix ~leq:T.leq replicas) in
  for round = 0 to cfg.rounds - 1 do
    for i = 0 to n - 1 do
      if draw (fun r -> Rng.below r cfg.p_update) then update i
    done;
    for _ = 1 to cfg.syncs_per_round do
      let i = draw (fun r -> Rng.int r n) in
      let j = draw (fun r -> Rng.int r (n - 1)) in
      let j = if j >= i then j + 1 else j in
      if Weather.allowed weather ~step:round ~n i j then sync i j
      else incr blocked
    done;
    let m, _ = observe ~round ~phase:`Active in
    last_active := m
  done;
  (* --- quiescence: the weather clears, gossip sweeps until every pair
     compares equal (two sweeps suffice for join-then-fork syncs: one
     to concentrate all knowledge at replica 0, one to spread it) --- *)
  let heal_rounds = ref 0 in
  let converged = ref (snd (observe ~round:cfg.rounds ~phase:`Heal)) in
  while (not !converged) && !heal_rounds < cfg.max_heal_rounds do
    incr heal_rounds;
    for i = 1 to n - 1 do
      sync 0 i
    done;
    let _, c = observe ~round:(cfg.rounds + !heal_rounds) ~phase:`Heal in
    converged := c
  done;
  let final = Conv.matrix ~leq:T.leq replicas in
  {
    replicas = n;
    updates = !updates;
    syncs = !syncs;
    blocked_syncs = !blocked;
    active_rounds = cfg.rounds;
    heal_rounds = !heal_rounds;
    converged = !converged;
    convergence = (if !converged then Conv.Timer.result timer else None);
    peak_width = !peak_width;
    peak_lag = !peak_lag;
    mean_lag =
      (if !rounds_seen = 0 then 0.
       else !lag_sum /. float_of_int !rounds_seen);
    peak_entropy = !peak_entropy;
    divergence = !last_active;
    final;
    shipped_bytes = tally.Ledger.shipped;
    minimal_bytes = tally.Ledger.minimal;
    redundant_bytes = Ledger.redundant tally;
    delta_efficiency = Ledger.efficiency tally;
  }
