(** The paper's figures as executable, checkable artifacts.

    Each scenario reproduces one figure of the paper exactly:
    re-running it regenerates the published states, and a [matches_paper]
    (or agreement) predicate asserts the published values.  The benchmark
    harness prints these, and the test suite pins them. *)

(** Figure 1: update tracking among three fixed replicas with classic
    version vectors.  A updates twice, C updates once, A→B and B↔C
    synchronizations propagate state; the final vectors are
    A=\[2,0,0\], B=C=\[1,0,1\] with A mutually inconsistent with B/C. *)
module Fig1 : sig
  type step = { replica : string; vector : Vstamp_vv.Version_vector.t }

  type t = {
    timeline : (string * step list) list;
    final : (string * Vstamp_vv.Version_vector.t) list;
    relations : (string * string * Vstamp_core.Relation.t) list;
  }

  val run : unit -> t

  val expected_final : (string * int list) list
  (** The counter triples printed in the paper. *)

  val matches_paper : t -> bool
end

(** Figures 2 and 4: the fork/join evolution of eleven elements and the
    version stamps it produces, including the post-join rewrite chain
    [\[1|00+01+1\] -> \[1|0+1\] -> \[eps|eps\]]. *)
module Fig4 : sig
  val trace : Vstamp_core.Execution.op list
  (** The Figure 2 evolution in positional-trace form. *)

  type t = {
    named_steps : (string * Vstamp_core.Stamp.t) list;
        (** The figure's element names (a1, a2, b1, c1, d1, e1, c2, c3,
            f1, g1) with their stamps. *)
    g_unreduced : Vstamp_core.Stamp.t;
        (** The final join before simplification: [\[1|00+01+1\]]. *)
    g_reduction_chain : Vstamp_core.Stamp.t list;
        (** The three stamps of the rewrite chain. *)
    final : Vstamp_core.Stamp.t;  (** [\[eps|eps\]]. *)
  }

  val run : unit -> t

  val matches_paper : t -> bool

  val frontier_queries :
    t -> (string * string * Vstamp_core.Relation.t) list
  (** Sample coexisting-element queries (d1 vs c3, e1, f1). *)
end

(** Figure 3: the Figure 1 run re-encoded under fork-and-join dynamics
    (synchronization = join;fork).  The stamp encoding and the
    version-vector original must induce identical frontier relations. *)
module Fig3 : sig
  type t = {
    stamps : (string * Vstamp_core.Stamp.t) list;
    vectors : (string * Vstamp_vv.Version_vector.t) list;
    stamp_relations : (string * string * Vstamp_core.Relation.t) list;
    vv_relations : (string * string * Vstamp_core.Relation.t) list;
  }

  val run : unit -> t

  val encodings_agree : t -> bool
end

(** Frontier bookkeeping along the Figure 2 trace, illustrating the
    Section 1.2 distinction between frontier and overall ordering. *)
module Frontiers : sig
  val all_frontiers : unit -> Vstamp_core.Stamp.t list list

  val frontier_sizes : unit -> int list
end
