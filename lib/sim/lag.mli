(** The convergence scenario: drive a fixed frontier of replicas under
    {!Weather}, watch divergence with {!Vstamp_obs.Convergence}, then
    quiesce and measure the time back to global dominance.

    Each run keeps the causal-history oracle in lockstep, so per-replica
    lag is ground truth (events issued somewhere but unknown locally),
    while the divergence matrix reflects the {e mechanism's} view via
    its [leq] — for an accurate tracker the two agree at convergence
    (Proposition 5.1).

    Every sync is also charged to the delta ledger: the bytes a
    full-state exchange ships (both replicas' tracking data) against
    the minimal delta a frontier-exchange protocol would need (nothing
    for equal replicas, the dominant side only for ordered ones, both
    for concurrent ones).  The totals surface as
    [sim_sync_shipped_bytes_total], [sim_sync_minimal_bytes_total],
    [sim_sync_redundant_bytes_total] and [sim_sync_delta_efficiency]
    when a registry is supplied.

    Deterministic in [seed] except for the wall-clock component of the
    convergence time. *)

type config = {
  replicas : int;  (** Fixed frontier size (>= 2). *)
  rounds : int;  (** Active (write + weathered sync) rounds. *)
  p_update : float;  (** Per-replica write probability per round. *)
  syncs_per_round : int;  (** Sync attempts per round (weather may block). *)
  severity : float;  (** Partition severity, [0] – [1] (see {!Weather}). *)
  seed : int;
  epoch : int;  (** Weather epoch length, in rounds. *)
  max_heal_rounds : int;  (** Quiescence gossip-sweep budget. *)
}

val default_config : config
(** 3 replicas, 12 rounds, p_update 0.5, 2 syncs/round, severity 0.6,
    seed 42, epoch 4, 8 heal rounds. *)

type round_obs = {
  round : int;
  phase : [ `Active | `Heal ];
  lag : int array;
  width : int;
  entropy : float;
  converged_now : bool;
}

type result = {
  replicas : int;
  updates : int;
  syncs : int;  (** Executed syncs (active + heal). *)
  blocked_syncs : int;  (** Sync attempts the weather disallowed. *)
  active_rounds : int;
  heal_rounds : int;  (** Sweeps needed after quiescence. *)
  converged : bool;
  convergence : (int64 * int) option;
      (** [(wall ns, steps)] from the last write to stable global
          dominance; [None] if the heal budget ran out. *)
  peak_width : int;
  peak_lag : int;
  mean_lag : float;  (** Mean per-replica lag, averaged over rounds. *)
  peak_entropy : float;
  divergence : Vstamp_obs.Convergence.matrix;
      (** The mechanism's view at the end of the active phase. *)
  final : Vstamp_obs.Convergence.matrix;
  shipped_bytes : int;
  minimal_bytes : int;
  redundant_bytes : int;
  delta_efficiency : float;  (** [minimal / shipped]; [1.] with no syncs. *)
}

val run :
  ?registry:Vstamp_obs.Registry.t ->
  ?on_round:(round_obs -> unit) ->
  config ->
  Tracker.packed ->
  result
(** Run the scenario over one tracking mechanism.  When [registry] is
    given, every round publishes the {!Vstamp_obs.Convergence} gauge
    families plus the delta-accounting totals into it (which is how the
    soak driver's [--partition-weather] feeds [/metrics] and
    [/lag.json]); [on_round] observes each round.
    @raise Invalid_argument if [config.replicas < 2]. *)
