type t = { state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let of_int64 state = { state }

(* splitmix64: one 64-bit multiply-xorshift round per draw *)
let next t =
  let open Int64 in
  let s = add t.state golden in
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (logxor z (shift_right_logical z 31), { state = s })

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let raw, t = next t in
  (* keep 62 bits so the value fits OCaml's native int non-negatively *)
  (Int64.to_int (Int64.shift_right_logical raw 2) mod bound, t)

let bool t =
  let raw, t = next t in
  (Int64.logand raw 1L = 1L, t)

let float t =
  let raw, t = next t in
  (Int64.to_float (Int64.shift_right_logical raw 11) /. 9007199254740992.0, t)

let below t p =
  let x, t = float t in
  (x < p, t)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs ->
      let i, t = int t (List.length xs) in
      (List.nth xs i, t)

let pick_weighted t = function
  | [] -> invalid_arg "Rng.pick_weighted: empty list"
  | choices ->
      let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
      if total <= 0 then invalid_arg "Rng.pick_weighted: non-positive total";
      let roll, t = int t total in
      let rec go acc = function
        | [] -> assert false
        | (w, x) :: rest -> if roll < acc + w then (x, t) else go (acc + w) rest
      in
      go 0 choices

let split t =
  let a, t = next t in
  (of_int64 a, t)

let shuffle t xs =
  let arr = Array.of_list xs in
  let t = ref t in
  for i = Array.length arr - 1 downto 1 do
    let j, t' = int !t (i + 1) in
    t := t';
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  (Array.to_list arr, !t)
