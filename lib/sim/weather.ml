type t = { seed : int; epoch : int; severity : float }

let make ?(seed = 0) ?(epoch = 8) ~severity () =
  if not (severity >= 0. && severity <= 1.) then
    invalid_arg "Weather.make: severity must be in [0, 1]";
  if epoch < 1 then invalid_arg "Weather.make: epoch must be >= 1";
  { seed; epoch; severity }

let severity t = t.severity

let groups_at t ~step ~n =
  if n <= 0 then [||]
  else begin
    let era = step / t.epoch in
    (* one generator per (weather, era): the grouping holds for the
       whole epoch and changes when the era ticks over *)
    let rng = ref (Rng.make ((t.seed * 1_000_003) + era)) in
    let draw bound =
      let v, rng' = Rng.int !rng bound in
      rng := rng';
      v
    in
    (* expected fragmentation scales with severity: at 0 there is one
       group, at 1 as many candidate groups as replicas.  Each replica
       draws its group independently, so sizes are unequal and some
       candidate groups stay empty — the partition is asymmetric and
       its effective group count varies epoch to epoch. *)
    let candidates =
      1 + int_of_float (Float.round (t.severity *. float_of_int (n - 1)))
    in
    Array.init n (fun _ -> if candidates <= 1 then 0 else draw candidates)
  end

let allowed t ~step ~n i j =
  i = j
  ||
  let g = groups_at t ~step ~n in
  i >= 0 && j >= 0 && i < n && j < n && g.(i) = g.(j)

let group_count t ~step ~n =
  let g = groups_at t ~step ~n in
  let seen = Hashtbl.create 8 in
  Array.iter (fun x -> Hashtbl.replace seen x ()) g;
  Hashtbl.length seen
