(** Partition weather: asymmetric, evolving connectivity for soaks and
    convergence experiments.

    Where {!Partition} models a fixed set of groups the caller manages
    explicitly, weather derives the whole connectivity history from a
    seed: time is cut into epochs, and each epoch draws a fresh random
    grouping of the replicas whose expected fragmentation grows with
    [severity].  Group sizes are deliberately {e unequal} (each replica
    draws its group independently), so partitions are asymmetric — a
    large connected component drifts slowly while small islands starve,
    which is the regime where per-replica lag spreads out.

    Deterministic: the grouping at any [step] is a pure function of
    [(seed, severity, epoch, step / epoch, n)]. *)

type t

val make : ?seed:int -> ?epoch:int -> severity:float -> unit -> t
(** [severity] in [[0, 1]]: [0.] is permanently fully connected, [1.]
    fragments the replicas into (expected) one-replica islands.
    [epoch] (default 8) is the number of steps a grouping lasts;
    [seed] defaults to 0.
    @raise Invalid_argument if [severity] is outside [[0, 1]] or
    [epoch < 1]. *)

val severity : t -> float

val groups_at : t -> step:int -> n:int -> int array
(** The group label of each of [n] replicas during the epoch containing
    [step].  Labels are arbitrary ints; equality means connectivity. *)

val allowed : t -> step:int -> n:int -> int -> int -> bool
(** Whether replicas [i] and [j] (positions below [n]) may communicate
    at [step]: same group in the current epoch.  Reflexive. *)

val group_count : t -> step:int -> n:int -> int
(** Distinct groups in the current epoch — 1 when fully connected. *)
