open Vstamp_core
open Vstamp_vv

module type S = sig
  type t

  type state

  val name : string

  val initial : state * t

  val update : state -> t -> state * t

  val fork : state -> t -> state * (t * t)

  val join : state -> t -> t -> state * t

  val leq : t -> t -> bool

  val size_bits : t -> int

  val invariants : t list -> Invariants.violation list

  val pp : Format.formatter -> t -> unit
end

type packed = Packed : (module S with type t = 'a and type state = 'b) -> packed

let name (Packed (module T)) = T.name

(* One stamp adapter for every name backend (and both join flavours):
   the three hand-written copies this replaces differed only in the
   stamp module and the [reduce] flag. *)
module Of_stamp (B : sig
  val name : string

  val reduce : bool

  include Backend.S
end) : S with type t = B.Stamp.t and type state = unit = struct
  module I = Invariants.Make (B.Name) (B.Stamp)

  type t = B.Stamp.t

  type state = unit

  let name = B.name

  let initial = ((), B.Stamp.seed)

  let update () x = ((), B.Stamp.update x)

  let fork () x = ((), B.Stamp.fork x)

  let join () a b = ((), B.Stamp.join ~reduce:B.reduce a b)

  let leq = B.Stamp.leq

  let size_bits = B.Stamp.size_bits

  let invariants = I.check

  let pp = B.Stamp.pp
end

(* The tree backend keeps its historical bare name; others are
   suffixed with their registry key. *)
let stamp_tracker_name key =
  if String.equal key Backend.default_key then "stamps" else "stamps-" ^ key

module Stamps = Of_stamp (struct
  let name = "stamps"

  let reduce = true

  include Backend.Over_tree
end)

module Stamps_nonreducing = Of_stamp (struct
  let name = "stamps-noreduce"

  let reduce = false

  module Name = Name_tree
  module Stamp = Stamp.Over_tree
end)

module Stamps_list = Of_stamp (struct
  let name = "stamps-list"

  let reduce = true

  include Backend.Over_list
end)

module Stamps_packed = Of_stamp (struct
  let name = "stamps-packed"

  let reduce = true

  include Backend.Over_packed
end)

module Histories :
  S with type t = Causal_history.t and type state = Causal_history.Gen.t =
struct
  type t = Causal_history.t

  type state = Causal_history.Gen.t

  let name = "causal-histories"

  let initial = (Causal_history.Gen.initial, Causal_history.empty)

  let update gen h =
    let e, gen = Causal_history.Gen.fresh gen in
    (gen, Causal_history.add_event e h)

  let fork gen h = (gen, (h, h))

  let join gen a b = (gen, Causal_history.union a b)

  let leq = Causal_history.subset

  (* one event identity costs the width of its number *)
  let size_bits h =
    List.fold_left
      (fun acc e -> acc + Version_vector.bits_for (e + 1))
      0
      (Causal_history.events h)

  let invariants _ = []

  let pp = Causal_history.pp
end

(* Version vectors need an id per replica; the simulator grants them a
   perfectly available central allocator — the comparison is about size
   and correctness, with the availability question treated separately by
   {!Partition}. *)
module Vv : S with type t = Version_vector.Replica.t and type state = int =
struct
  type t = Version_vector.Replica.t

  type state = int

  let name = "version-vectors"

  let initial = (1, Version_vector.Replica.create ~id:0)

  let update next r = (next, Version_vector.Replica.update r)

  let fork next r =
    let child = Version_vector.Replica.create ~id:next in
    let r', child' = Version_vector.Replica.sync r child in
    (next + 1, (r', child'))

  let join next a b = (next, fst (Version_vector.Replica.sync a b))

  let leq a b =
    Version_vector.leq
      (Version_vector.Replica.vector a)
      (Version_vector.Replica.vector b)

  let size_bits r = Version_vector.size_bits (Version_vector.Replica.vector r)

  let invariants _ = []

  let pp = Version_vector.Replica.pp
end

module Dvv : S with type t = Dynamic_vv.t and type state = int = struct
  type t = Dynamic_vv.t

  type state = int

  let name = "dynamic-vv"

  let initial = (1, Dynamic_vv.create ~id:0)

  let update next r = (next, Dynamic_vv.update r)

  let fork next r = (next + 1, Dynamic_vv.fork r ~new_id:next)

  let join next a b =
    (next + 1, Dynamic_vv.join a b ~survivor_id:next)

  let leq = Dynamic_vv.leq

  let size_bits = Dynamic_vv.size_bits

  let invariants _ = []

  let pp = Dynamic_vv.pp
end

module Plausible (R : sig
  val size : int
end) : S with type t = Plausible_clock.t * int and type state = int = struct
  type t = Plausible_clock.t * int
  (* clock plus the replica's own id, folded onto a slot at updates *)

  type state = int

  let name = Printf.sprintf "plausible-%d" R.size

  let initial = (1, (Plausible_clock.create ~size:R.size, 0))

  let update next (c, id) = (next, (Plausible_clock.increment c ~id, id))

  let fork next (c, id) = (next + 1, ((c, id), (c, next)))

  let join next (ca, ida) (cb, _) = (next, (Plausible_clock.merge ca cb, ida))

  let leq (a, _) (b, _) = Plausible_clock.leq a b

  let size_bits (c, _) = Plausible_clock.size_bits c

  let invariants _ = []

  let pp ppf (c, id) = Format.fprintf ppf "r%d%a" id Plausible_clock.pp c
end

module Plausible4 = Plausible (struct
  let size = 4
end)

module Plausible8 = Plausible (struct
  let size = 8
end)

let stamps = Packed (module Stamps)

let stamps_nonreducing = Packed (module Stamps_nonreducing)

let stamps_list = Packed (module Stamps_list)

let stamps_packed = Packed (module Stamps_packed)

(* Build a stamp tracker from any backend value, e.g. one freshly pulled
   out of the registry. *)
let of_backend ?(reduce = true) ~name b =
  let module B = (val b : Backend.S) in
  let module T = Of_stamp (struct
    let name = name

    let reduce = reduce

    include B
  end) in
  Packed (module T)

(* One stamp tracker per registered backend, in registry (key) order.
   The three in-tree backends resolve to the statically built modules
   above so their [t] types stay equal to the exposed ones. *)
let of_registry () =
  List.map
    (fun (e : Backend.entry) ->
      match e.key with
      | "tree" -> stamps
      | "list" -> stamps_list
      | "packed" -> stamps_packed
      | key -> of_backend ~name:(stamp_tracker_name key) e.impl)
    (Backend.entries ())

let histories = Packed (module Histories)

let version_vectors = Packed (module Vv)

let dynamic_vv = Packed (module Dvv)

let plausible size =
  let module P = Plausible (struct
    let size = size
  end) in
  Packed (module P)

(* The sweep set: the default stamp tracker first (its historical
   position), the non-reducing variant, then the remaining registry
   backends, then the baselines. *)
let all =
  (stamps :: stamps_nonreducing
   :: List.filter (fun t -> name t <> "stamps") (of_registry ()))
  @ [ histories; version_vectors; dynamic_vv; plausible 4; plausible 8 ]

(* Wrap a tracker so every operation (and comparison) is timed into a
   registry histogram — per-mechanism op latency without touching the
   mechanism itself. *)
let with_metrics ?(registry = Vstamp_obs.Registry.default) (Packed (module T)) =
  Packed
    (module struct
      type t = T.t

      type state = T.state

      let name = T.name

      let initial = T.initial

      let span op f =
        Vstamp_obs.Span.time ~registry
          (Printf.sprintf "tracker_op_ns{tracker=%S,op=%S}" T.name op)
          f

      let update st x = span "update" (fun () -> T.update st x)

      let fork st x = span "fork" (fun () -> T.fork st x)

      let join st a b = span "join" (fun () -> T.join st a b)

      let leq a b = span "leq" (fun () -> T.leq a b)

      let size_bits = T.size_bits

      let invariants = T.invariants

      let pp = T.pp
    end)
