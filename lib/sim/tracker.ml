open Vstamp_core
open Vstamp_vv

module type S = sig
  type t

  type state

  val name : string

  val initial : state * t

  val update : state -> t -> state * t

  val fork : state -> t -> state * (t * t)

  val join : state -> t -> t -> state * t

  val leq : t -> t -> bool

  val size_bits : t -> int

  val invariants : t list -> Invariants.violation list

  val pp : Format.formatter -> t -> unit
end

type packed = Packed : (module S with type t = 'a and type state = 'b) -> packed

let name (Packed (module T)) = T.name

module Stamps : S with type t = Stamp.t and type state = unit = struct
  type t = Stamp.t

  type state = unit

  let name = "stamps"

  let initial = ((), Stamp.seed)

  let update () x = ((), Stamp.update x)

  let fork () x = ((), Stamp.fork x)

  let join () a b = ((), Stamp.join a b)

  let leq = Stamp.leq

  let size_bits = Stamp.size_bits

  let invariants = Invariants.check

  let pp = Stamp.pp
end

module Stamps_nonreducing : S with type t = Stamp.t and type state = unit =
struct
  include Stamps

  let name = "stamps-noreduce"

  let join () a b = ((), Stamp.join ~reduce:false a b)
end

module Stamps_list : S with type t = Stamp.Over_list.t and type state = unit =
struct
  type t = Stamp.Over_list.t

  type state = unit

  let name = "stamps-list"

  let initial = ((), Stamp.Over_list.seed)

  let update () x = ((), Stamp.Over_list.update x)

  let fork () x = ((), Stamp.Over_list.fork x)

  let join () a b = ((), Stamp.Over_list.join a b)

  let leq = Stamp.Over_list.leq

  let size_bits = Stamp.Over_list.size_bits

  let invariants = Invariants.Over_list.check

  let pp = Stamp.Over_list.pp
end

module Histories :
  S with type t = Causal_history.t and type state = Causal_history.Gen.t =
struct
  type t = Causal_history.t

  type state = Causal_history.Gen.t

  let name = "causal-histories"

  let initial = (Causal_history.Gen.initial, Causal_history.empty)

  let update gen h =
    let e, gen = Causal_history.Gen.fresh gen in
    (gen, Causal_history.add_event e h)

  let fork gen h = (gen, (h, h))

  let join gen a b = (gen, Causal_history.union a b)

  let leq = Causal_history.subset

  (* one event identity costs the width of its number *)
  let size_bits h =
    List.fold_left
      (fun acc e -> acc + Version_vector.bits_for (e + 1))
      0
      (Causal_history.events h)

  let invariants _ = []

  let pp = Causal_history.pp
end

(* Version vectors need an id per replica; the simulator grants them a
   perfectly available central allocator — the comparison is about size
   and correctness, with the availability question treated separately by
   {!Partition}. *)
module Vv : S with type t = Version_vector.Replica.t and type state = int =
struct
  type t = Version_vector.Replica.t

  type state = int

  let name = "version-vectors"

  let initial = (1, Version_vector.Replica.create ~id:0)

  let update next r = (next, Version_vector.Replica.update r)

  let fork next r =
    let child = Version_vector.Replica.create ~id:next in
    let r', child' = Version_vector.Replica.sync r child in
    (next + 1, (r', child'))

  let join next a b = (next, fst (Version_vector.Replica.sync a b))

  let leq a b =
    Version_vector.leq
      (Version_vector.Replica.vector a)
      (Version_vector.Replica.vector b)

  let size_bits r = Version_vector.size_bits (Version_vector.Replica.vector r)

  let invariants _ = []

  let pp = Version_vector.Replica.pp
end

module Dvv : S with type t = Dynamic_vv.t and type state = int = struct
  type t = Dynamic_vv.t

  type state = int

  let name = "dynamic-vv"

  let initial = (1, Dynamic_vv.create ~id:0)

  let update next r = (next, Dynamic_vv.update r)

  let fork next r = (next + 1, Dynamic_vv.fork r ~new_id:next)

  let join next a b =
    (next + 1, Dynamic_vv.join a b ~survivor_id:next)

  let leq = Dynamic_vv.leq

  let size_bits = Dynamic_vv.size_bits

  let invariants _ = []

  let pp = Dynamic_vv.pp
end

module Plausible (R : sig
  val size : int
end) : S with type t = Plausible_clock.t * int and type state = int = struct
  type t = Plausible_clock.t * int
  (* clock plus the replica's own id, folded onto a slot at updates *)

  type state = int

  let name = Printf.sprintf "plausible-%d" R.size

  let initial = (1, (Plausible_clock.create ~size:R.size, 0))

  let update next (c, id) = (next, (Plausible_clock.increment c ~id, id))

  let fork next (c, id) = (next + 1, ((c, id), (c, next)))

  let join next (ca, ida) (cb, _) = (next, (Plausible_clock.merge ca cb, ida))

  let leq (a, _) (b, _) = Plausible_clock.leq a b

  let size_bits (c, _) = Plausible_clock.size_bits c

  let invariants _ = []

  let pp ppf (c, id) = Format.fprintf ppf "r%d%a" id Plausible_clock.pp c
end

module Plausible4 = Plausible (struct
  let size = 4
end)

module Plausible8 = Plausible (struct
  let size = 8
end)

let stamps = Packed (module Stamps)

let stamps_nonreducing = Packed (module Stamps_nonreducing)

let stamps_list = Packed (module Stamps_list)

let histories = Packed (module Histories)

let version_vectors = Packed (module Vv)

let dynamic_vv = Packed (module Dvv)

let plausible size =
  let module P = Plausible (struct
    let size = size
  end) in
  Packed (module P)

let all =
  [
    stamps;
    stamps_nonreducing;
    stamps_list;
    histories;
    version_vectors;
    dynamic_vv;
    plausible 4;
    plausible 8;
  ]

(* Wrap a tracker so every operation (and comparison) is timed into a
   registry histogram — per-mechanism op latency without touching the
   mechanism itself. *)
let with_metrics ?(registry = Vstamp_obs.Registry.default) (Packed (module T)) =
  Packed
    (module struct
      type t = T.t

      type state = T.state

      let name = T.name

      let initial = T.initial

      let span op f =
        Vstamp_obs.Span.time ~registry
          (Printf.sprintf "tracker_op_ns{tracker=%S,op=%S}" T.name op)
          f

      let update st x = span "update" (fun () -> T.update st x)

      let fork st x = span "fork" (fun () -> T.fork st x)

      let join st a b = span "join" (fun () -> T.join st a b)

      let leq a b = span "leq" (fun () -> T.leq a b)

      let size_bits = T.size_bits

      let invariants = T.invariants

      let pp = T.pp
    end)
