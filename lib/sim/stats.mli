(** Small numeric helpers for experiment reporting. *)

val mean : float list -> float
(** [0.] on the empty list. *)

val mean_int : int list -> float

val max_int_list : int list -> int
(** [0] on the empty list. *)

val min_int_list : int list -> int
(** [0] on the empty list. *)

val sum_int : int list -> int

val percentile : float -> int list -> int
(** [percentile 95. xs] is the nearest-rank 95th percentile; [0] on the
    empty list. *)

type summary = {
  n : int;
  mean : float;  (** Exact. *)
  p50 : float;  (** Histogram-resolution estimate (about 9%). *)
  p95 : float;
  p99 : float;
  max : int;  (** Exact. *)
}

val summary : int list -> summary
(** Percentile aggregation backed by the {!Vstamp_obs.Metric.histogram}
    log-scaled histogram: mean and max are exact, quantiles are
    bucket-resolution estimates.  All zeros on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation; [0.] below two points. *)

val pp_table : Format.formatter -> header:string list -> string list list -> unit
(** Markdown-style aligned table; every row must have the header's
    arity. *)
