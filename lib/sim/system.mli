(** Run traces over trackers and measure size and accuracy.

    Every run can be paired with the causal-history oracle on the same
    trace (frontiers stay element-aligned by construction), giving an
    exact count of ordering mistakes — zero for version stamps and
    version vectors, non-zero for plausible clocks. *)

type accuracy = {
  comparisons : int;  (** Ordered pairs of distinct frontier elements. *)
  spurious_orderings : int;
      (** Tracker claims an order the oracle denies (invented causality —
          the plausible-clock failure mode). *)
  missed_orderings : int;
      (** Oracle orders a pair the tracker calls concurrent (lost
          causality — would indicate a broken mechanism). *)
}

val perfect : accuracy -> bool

type size_summary = {
  frontier : int;  (** Number of live replicas at the end. *)
  mean_bits : float;  (** Mean tracking-data size per replica. *)
  p50_bits : float;  (** {!Stats.summary} histogram estimates. *)
  p95_bits : float;
  p99_bits : float;
  max_bits : int;
  total_bits : int;
}

type result = {
  tracker : string;
  ops : int;
  updates : int;
  forks : int;
  joins : int;
  final : size_summary;  (** Sizes on the final frontier. *)
  peak_bits : int;  (** Largest single replica size at any step. *)
  mean_step_bits : float;  (** Mean of per-step mean sizes. *)
  accuracy : accuracy option;  (** [None] when run without the oracle. *)
}

exception
  Invariant_violation of {
    tracker : string;
    step : int;  (** 1-based step of the offending op (0: seed frontier). *)
    op : Vstamp_core.Execution.op;
    violations : Vstamp_core.Invariants.violation list;
        (** The I1–I3 witnesses; empty when only the order sanity check
            (reflexivity of the tracker's [leq]) failed. *)
    prefix : Vstamp_core.Execution.op list;
        (** The minimal failing prefix — the shortest prefix of the run
            that already violates (checks run after every step, so it
            ends at the offending op). *)
    saved : string option;  (** File the prefix was saved to, if any. *)
  }
(** Raised by {!run} with [~check_invariants:true] when a step leaves
    the frontier in violation of the mechanism's invariants. *)

val run :
  ?with_oracle:bool ->
  ?registry:Vstamp_obs.Registry.t ->
  ?sink:Vstamp_obs.Sink.t ->
  ?check_invariants:bool ->
  ?sampling:Vstamp_obs.Monitor.sampling ->
  ?sample_seed:int ->
  ?violation_out:string ->
  ?trace:Vstamp_obs.Causal_trace.t ->
  ?profile:Vstamp_obs.Profile.t ->
  Tracker.packed ->
  Vstamp_core.Execution.op list ->
  result
(** Play a trace over one tracker; [with_oracle] (default [true]) also
    plays it over causal histories and scores the final frontier.

    With [registry], per-operation wall-clock latencies are recorded
    into [sim_op_ns{tracker=...,op=...}] histograms and per-replica
    sizes into [sim_size_bits{tracker=...}].  With [sink], a
    machine-readable event stream is emitted: one [sim.start] event,
    one [sim.step] event per operation (frontier width, total and max
    bits) and a final [sim.result] summary.  Event timestamps are the
    {e logical step counter}, never a wall clock, so the stream is
    byte-identical across runs of the same trace.

    With [check_invariants] (default [false]), a {!Vstamp_obs.Monitor}
    evaluates the tracker's frontier invariants (I1–I3 for stamps, via
    [Tracker.S.invariants]) and an order-sanity pass after every step,
    counting into [vstamp_invariant_checks_total] /
    [vstamp_invariant_violations_total] of [registry] (or the default
    registry) and emitting an [invariant.violation] event into [sink] on
    failure; the run then fails loudly with {!Invariant_violation}
    carrying the minimal failing prefix, saved via {!Trace} to
    [violation_out] when given.

    [sampling] (default [Always]) thins the invariant checks to a
    subset of the steps — [Every_n k] or [Probability p], the latter
    drawn from the deterministic simulation RNG seeded with
    [sample_seed] (default [0]) so sampled runs stay reproducible.  The
    final frontier is always force-checked.  The run publishes
    [vstamp_monitor_coverage{monitor=...}] (checked/offered steps),
    [vstamp_monitor_check_ns{monitor=...}] (cumulative check time) and
    [vstamp_monitor_time_fraction{monitor=...}] (check time over run
    time; slowdown ≈ 1/(1 − fraction)) as gauges in [registry] (or the
    default registry).  A violation event under sampling carries the
    sampling decision — the policy, the previous checked step and the
    seen/checked totals — so the offending window can be replayed with
    full checking.

    With [trace], the run's causal event DAG (one node per replica
    state, parent edges from the fork/update/join structure, logical
    step stamps, stamps as labels) is appended to the given recorder —
    the input to the [vstamp trace] forensics.

    With [profile], every tracker operation, monitor check, trace
    recording and oracle replay is attributed (time and allocation)
    into the given {!Vstamp_obs.Profile} under stacks
    [[tracker; "update"|"fork"|"join"|"monitor"|"record"|"oracle"]]. *)

val run_all :
  ?with_oracle:bool ->
  ?registry:Vstamp_obs.Registry.t ->
  ?sink:Vstamp_obs.Sink.t ->
  ?check_invariants:bool ->
  ?sampling:Vstamp_obs.Monitor.sampling ->
  ?sample_seed:int ->
  ?profile:Vstamp_obs.Profile.t ->
  Tracker.packed list ->
  Vstamp_core.Execution.op list ->
  result list

val pp_accuracy : Format.formatter -> accuracy option -> unit

val pp_result : Format.formatter -> result -> unit

val to_row : result -> string list
(** Row for {!Stats.pp_table} under {!header}. *)

val header : string list
