open Vstamp_core

type accuracy = {
  comparisons : int;
  spurious_orderings : int;
      (* tracker claims leq, oracle says no: causality invented *)
  missed_orderings : int;
      (* oracle says leq, tracker disagrees: causality lost *)
}

let perfect a = a.spurious_orderings = 0 && a.missed_orderings = 0

type size_summary = {
  frontier : int;
  mean_bits : float;
  max_bits : int;
  total_bits : int;
}

type result = {
  tracker : string;
  ops : int;
  updates : int;
  forks : int;
  joins : int;
  final : size_summary;
  peak_bits : int;
  mean_step_bits : float;
  accuracy : accuracy option;
}

let summarize sizes =
  {
    frontier = List.length sizes;
    mean_bits = Stats.mean_int sizes;
    max_bits = Stats.max_int_list sizes;
    total_bits = Stats.sum_int sizes;
  }

let count_ops ops =
  List.fold_left
    (fun (u, f, j) -> function
      | Execution.Update _ -> (u + 1, f, j)
      | Execution.Fork _ -> (u, f + 1, j)
      | Execution.Join _ -> (u, f, j + 1))
    (0, 0, 0) ops

(* Compare a tracker frontier against the element-aligned oracle
   frontier on all ordered pairs of distinct elements. *)
let accuracy_of (type a) (module T : Tracker.S with type t = a)
    (frontier : a list) (oracle : Causal_history.t list) =
  let ts = Array.of_list frontier and hs = Array.of_list oracle in
  let n = Array.length ts in
  let comparisons = ref 0
  and spurious = ref 0
  and missed = ref 0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if x <> y then begin
        incr comparisons;
        let claimed = T.leq ts.(x) ts.(y) in
        let truth = Causal_history.subset hs.(x) hs.(y) in
        if claimed && not truth then incr spurious;
        if truth && not claimed then incr missed
      end
    done
  done;
  {
    comparisons = !comparisons;
    spurious_orderings = !spurious;
    missed_orderings = !missed;
  }

let run ?(with_oracle = true) (Tracker.Packed (module T)) ops =
  let module R = Execution.Run (T) in
  let steps = R.run_steps ops in
  let final_frontier = List.nth steps (List.length steps - 1) in
  let step_sizes = List.map (List.map T.size_bits) steps in
  let updates, forks, joins = count_ops ops in
  let accuracy =
    if with_oracle then
      let oracle = Execution.Run_histories.run ops in
      Some (accuracy_of (module T) final_frontier oracle)
    else None
  in
  {
    tracker = T.name;
    ops = List.length ops;
    updates;
    forks;
    joins;
    final = summarize (List.map T.size_bits final_frontier);
    peak_bits = Stats.max_int_list (List.map Stats.max_int_list step_sizes);
    mean_step_bits = Stats.mean (List.map Stats.mean_int step_sizes);
    accuracy;
  }

let run_all ?with_oracle trackers ops =
  List.map (fun t -> run ?with_oracle t ops) trackers

let pp_accuracy ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some a ->
      if perfect a then Format.fprintf ppf "exact (%d cmp)" a.comparisons
      else
        Format.fprintf ppf "%d spurious, %d missed of %d"
          a.spurious_orderings a.missed_orderings a.comparisons

let pp_result ppf r =
  Format.fprintf ppf
    "%-18s ops=%d (u=%d f=%d j=%d) frontier=%d mean=%.1fb max=%db peak=%db acc=%a"
    r.tracker r.ops r.updates r.forks r.joins r.final.frontier
    r.final.mean_bits r.final.max_bits r.peak_bits pp_accuracy r.accuracy

let to_row r =
  [
    r.tracker;
    string_of_int r.ops;
    string_of_int r.final.frontier;
    Printf.sprintf "%.1f" r.final.mean_bits;
    string_of_int r.final.max_bits;
    string_of_int r.peak_bits;
    Format.asprintf "%a" pp_accuracy r.accuracy;
  ]

let header =
  [ "tracker"; "ops"; "frontier"; "mean bits"; "max bits"; "peak bits"; "accuracy" ]
