open Vstamp_core

type accuracy = {
  comparisons : int;
  spurious_orderings : int;
      (* tracker claims leq, oracle says no: causality invented *)
  missed_orderings : int;
      (* oracle says leq, tracker disagrees: causality lost *)
}

let perfect a = a.spurious_orderings = 0 && a.missed_orderings = 0

type size_summary = {
  frontier : int;
  mean_bits : float;
  p50_bits : float;
  p95_bits : float;
  p99_bits : float;
  max_bits : int;
  total_bits : int;
}

type result = {
  tracker : string;
  ops : int;
  updates : int;
  forks : int;
  joins : int;
  final : size_summary;
  peak_bits : int;
  mean_step_bits : float;
  accuracy : accuracy option;
}

let summarize sizes =
  let s = Stats.summary sizes in
  {
    frontier = List.length sizes;
    mean_bits = s.Stats.mean;
    p50_bits = s.Stats.p50;
    p95_bits = s.Stats.p95;
    p99_bits = s.Stats.p99;
    max_bits = s.Stats.max;
    total_bits = Stats.sum_int sizes;
  }

let count_ops ops =
  List.fold_left
    (fun (u, f, j) -> function
      | Execution.Update _ -> (u + 1, f, j)
      | Execution.Fork _ -> (u, f + 1, j)
      | Execution.Join _ -> (u, f, j + 1))
    (0, 0, 0) ops

(* Compare a tracker frontier against the element-aligned oracle
   frontier on all ordered pairs of distinct elements. *)
let accuracy_of (type a) (module T : Tracker.S with type t = a)
    (frontier : a list) (oracle : Causal_history.t list) =
  let ts = Array.of_list frontier and hs = Array.of_list oracle in
  let n = Array.length ts in
  let comparisons = ref 0
  and spurious = ref 0
  and missed = ref 0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if x <> y then begin
        incr comparisons;
        let claimed = T.leq ts.(x) ts.(y) in
        let truth = Causal_history.subset hs.(x) hs.(y) in
        if claimed && not truth then incr spurious;
        if truth && not claimed then incr missed
      end
    done
  done;
  {
    comparisons = !comparisons;
    spurious_orderings = !spurious;
    missed_orderings = !missed;
  }

let op_label = function
  | Execution.Update _ -> "update"
  | Execution.Fork _ -> "fork"
  | Execution.Join _ -> "join"

exception
  Invariant_violation of {
    tracker : string;
    step : int;
    op : Execution.op;
    violations : Vstamp_core.Invariants.violation list;
    prefix : Execution.op list;
    saved : string option;
  }

let () =
  Printexc.register_printer (function
    | Invariant_violation { tracker; step; op; violations; prefix; saved } ->
        Some
          (Format.asprintf
             "Invariant_violation(tracker %s, step %d, op %s): %s; minimal \
              prefix of %d op(s)%s"
             tracker step
             (Execution.op_to_string op)
             (match violations with
             | [] -> "frontier order sanity failed"
             | vs ->
                 String.concat ", "
                   (List.map Vstamp_core.Invariants.violation_to_string vs))
             (List.length prefix)
             (match saved with
             | Some file -> Printf.sprintf " saved to %s" file
             | None -> ""))
    | _ -> None)

(* Telemetry around one run.  Timestamps in emitted events are the
   logical step counter — never a wall clock — so two runs of the same
   seeded trace produce byte-identical JSONL.  Wall-clock latencies,
   which are inherently nondeterministic, go only into the registry's
   histograms. *)
let run ?(with_oracle = true) ?registry ?sink ?(check_invariants = false)
    ?(sampling = Vstamp_obs.Monitor.Always) ?(sample_seed = 0) ?violation_out
    ?trace ?profile (Tracker.Packed (module T)) ops =
  let module R = Execution.Run (T) in
  let open Vstamp_obs in
  (* Per-attribution stacks are preallocated so profiling costs one
     closure call per op, not a list cons. *)
  let stack_update = [ T.name; "update" ]
  and stack_fork = [ T.name; "fork" ]
  and stack_join = [ T.name; "join" ]
  and stack_monitor = [ T.name; "monitor" ]
  and stack_record = [ T.name; "record" ]
  and stack_oracle = [ T.name; "oracle" ] in
  let profiled stack f =
    match profile with None -> f () | Some p -> Profile.time p stack f
  in
  let run_t0 = Clock.now_ns () in
  let st0, f0 = R.init in
  let sizes0 = List.map T.size_bits f0 in
  let emit_step step op sizes =
    match sink with
    | None -> ()
    | Some sk ->
        Sink.emit sk
          (Event.v ~ts:(Event.Step step) "sim.step"
             [
               ("tracker", Jsonx.String T.name);
               ("op", Jsonx.String (Execution.op_to_string op));
               ("frontier", Jsonx.Int (List.length sizes));
               ("total_bits", Jsonx.Int (Stats.sum_int sizes));
               ("max_bits", Jsonx.Int (Stats.max_int_list sizes));
             ])
  in
  let observe_sizes sizes =
    match registry with
    | None -> ()
    | Some reg ->
        let h =
          Registry.histogram reg
            (Printf.sprintf "sim_size_bits{tracker=%S}" T.name)
        in
        List.iter (Metric.observe_int h) sizes
  in
  let timed_apply st f op =
    match registry with
    | None -> R.apply st f op
    | Some reg ->
        let t0 = Clock.now_ns () in
        let r = R.apply st f op in
        Span.record ~registry:reg
          (Printf.sprintf "sim_op_ns{tracker=%S,op=%S}" T.name (op_label op))
          (Int64.sub (Clock.now_ns ()) t0);
        r
  in
  let apply st f op =
    let stack =
      match op with
      | Execution.Update _ -> stack_update
      | Execution.Fork _ -> stack_fork
      | Execution.Join _ -> stack_join
    in
    profiled stack (fun () -> timed_apply st f op)
  in
  (* Causal-trace recording: one DAG node per replica state, parents
     derived from the positional op structure.  [heads] mirrors the
     frontier with the node id currently carrying each position. *)
  let heads = ref [] in
  let record_label x = Format.asprintf "%a" T.pp x in
  (match trace with
  | None -> ()
  | Some tr ->
      heads :=
        List.map
          (fun x ->
            Causal_trace.add tr ~step:0 ~kind:Causal_trace.Seed ~parents:[]
              ~replica:0 ~label:(record_label x))
          f0);
  let record_step step op frontier' =
    match trace with
    | None -> ()
    | Some tr ->
        profiled stack_record @@ fun () -> (
        let head i = List.nth !heads i in
        let state i = record_label (List.nth frontier' i) in
        match op with
        | Execution.Update i ->
            let n =
              Causal_trace.add tr ~step ~kind:Causal_trace.Update
                ~parents:[ head i ] ~replica:i ~label:(state i)
            in
            heads := List.mapi (fun k h -> if k = i then n else h) !heads
        | Execution.Fork i ->
            let p = head i in
            let l =
              Causal_trace.add tr ~step ~kind:Causal_trace.Fork_left
                ~parents:[ p ] ~replica:i ~label:(state i)
            in
            let r =
              Causal_trace.add tr ~step ~kind:Causal_trace.Fork_right
                ~parents:[ p ] ~replica:(i + 1)
                ~label:(state (i + 1))
            in
            heads := Execution.fork_positions !heads i ~left:l ~right:r
        | Execution.Join (i, j) ->
            let lo = min i j in
            let n =
              Causal_trace.add tr ~step ~kind:Causal_trace.Join
                ~parents:[ head i; head j ] ~replica:lo ~label:(state lo)
            in
            heads := Execution.join_positions !heads i j ~merged:n)
  in
  (* Runtime invariant monitoring: I1–I3 via the tracker's own checker
     plus an order-sanity pass (frontier order must at least be
     reflexive), after every step.  A failing check fails loudly with
     the minimal witness: the shortest failing prefix is saved as a
     replayable trace and carried in the exception. *)
  let monitor =
    if check_invariants then begin
      (* the Probability policy draws from the sim's deterministic RNG,
         so a sampled run is exactly reproducible from (trace, seed) *)
      let sample =
        let rng = ref (Rng.make sample_seed) in
        fun () ->
          let x, r = Rng.float !rng in
          rng := r;
          x
      in
      Some (Monitor.create ?registry ?sink ~sampling ~sample T.name)
    end
    else None
  in
  let monitor_ns = ref 0L in
  let monitor_step ?force step op frontier rev_prefix =
    match monitor with
    | None -> ()
    | Some m ->
        let violations = ref [] and order_failures = ref [] in
        let witness () =
          violations := T.invariants frontier;
          order_failures :=
            List.concat
              (List.mapi (fun i x -> if T.leq x x then [] else [ i ]) frontier);
          Telemetry.violation_witness ~violations:!violations
            ~order_failures:!order_failures
        in
        let passed =
          profiled stack_monitor (fun () ->
              let t0 = Clock.now_ns () in
              let ok = Monitor.check m ?force ~step witness in
              monitor_ns := Int64.add !monitor_ns (Int64.sub (Clock.now_ns ()) t0);
              ok)
        in
        if not passed then begin
          let prefix = List.rev rev_prefix in
          let saved =
            match violation_out with
            | None -> None
            | Some file ->
                Trace.save ~file prefix;
                Some file
          in
          raise
            (Invariant_violation
               {
                 tracker = T.name;
                 step;
                 op;
                 violations = !violations;
                 prefix;
                 saved;
               })
        end
  in
  (match sink with
  | Some sk ->
      Sink.emit sk
        (Event.v ~ts:(Event.Step 0) "sim.start"
           [
             ("tracker", Jsonx.String T.name);
             ("ops", Jsonx.Int (List.length ops));
           ])
  | None -> ());
  observe_sizes sizes0;
  monitor_step 0 (Execution.Update 0) f0 [];
  let (_, final_frontier), rev_step_sizes, _, rev_prefix_all =
    List.fold_left
      (fun ((st, f), acc, step, rev_prefix) op ->
        let st', f' = apply st f op in
        let sizes = List.map T.size_bits f' in
        emit_step step op sizes;
        observe_sizes sizes;
        record_step step op f';
        monitor_step step op f' (op :: rev_prefix);
        ((st', f'), sizes :: acc, step + 1, op :: rev_prefix))
      ((st0, f0), [ sizes0 ], 1, [])
      ops
  in
  (* Under sampling the last step may have been skipped; the final
     frontier is the run's deliverable, so force-check it.  (With
     [Always] it was just checked and this is a no-op.) *)
  (match (monitor, rev_prefix_all) with
  | Some m, last_op :: _ ->
      let n = List.length ops in
      if Monitor.last_checked_step m <> Some n then
        monitor_step ~force:true n last_op final_frontier rev_prefix_all
  | _ -> ());
  (* What monitoring cost this run, as registry gauges: cumulative check
     time and its share of the whole run (slowdown ~ 1/(1 - share)). *)
  (match monitor with
  | None -> ()
  | Some _ ->
      let reg =
        match registry with Some r -> r | None -> Registry.default
      in
      let total_ns = Int64.to_float (Int64.sub (Clock.now_ns ()) run_t0) in
      let mon_ns = Int64.to_float !monitor_ns in
      Metric.set
        (Registry.gauge reg
           (Printf.sprintf "vstamp_monitor_check_ns{monitor=%S}" T.name))
        mon_ns;
      Metric.set
        (Registry.gauge reg
           (Printf.sprintf "vstamp_monitor_time_fraction{monitor=%S}" T.name))
        (if total_ns > 0.0 then mon_ns /. total_ns else 0.0));
  let step_sizes = List.rev rev_step_sizes in
  let updates, forks, joins = count_ops ops in
  let accuracy =
    if with_oracle then
      profiled stack_oracle (fun () ->
          let oracle = Execution.Run_histories.run ops in
          Some (accuracy_of (module T) final_frontier oracle))
    else None
  in
  let result =
    {
      tracker = T.name;
      ops = List.length ops;
      updates;
      forks;
      joins;
      final = summarize (List.map T.size_bits final_frontier);
      peak_bits = Stats.max_int_list (List.map Stats.max_int_list step_sizes);
      mean_step_bits = Stats.mean (List.map Stats.mean_int step_sizes);
      accuracy;
    }
  in
  (match sink with
  | Some sk ->
      let acc_fields =
        match accuracy with
        | None -> []
        | Some a ->
            [
              ("comparisons", Jsonx.Int a.comparisons);
              ("spurious", Jsonx.Int a.spurious_orderings);
              ("missed", Jsonx.Int a.missed_orderings);
            ]
      in
      Sink.emit sk
        (Event.v ~ts:(Event.Step result.ops) "sim.result"
           ([
              ("tracker", Jsonx.String T.name);
              ("ops", Jsonx.Int result.ops);
              ("updates", Jsonx.Int updates);
              ("forks", Jsonx.Int forks);
              ("joins", Jsonx.Int joins);
              ("frontier", Jsonx.Int result.final.frontier);
              ("mean_bits", Jsonx.Float result.final.mean_bits);
              ("p95_bits", Jsonx.Float result.final.p95_bits);
              ("max_bits", Jsonx.Int result.final.max_bits);
              ("total_bits", Jsonx.Int result.final.total_bits);
              ("peak_bits", Jsonx.Int result.peak_bits);
            ]
           @ acc_fields))
  | None -> ());
  result

let run_all ?with_oracle ?registry ?sink ?check_invariants ?sampling
    ?sample_seed ?profile trackers ops =
  List.map
    (fun t ->
      run ?with_oracle ?registry ?sink ?check_invariants ?sampling
        ?sample_seed ?profile t ops)
    trackers

let pp_accuracy ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some a ->
      if perfect a then Format.fprintf ppf "exact (%d cmp)" a.comparisons
      else
        Format.fprintf ppf "%d spurious, %d missed of %d"
          a.spurious_orderings a.missed_orderings a.comparisons

let pp_result ppf r =
  Format.fprintf ppf
    "%-18s ops=%d (u=%d f=%d j=%d) frontier=%d mean=%.1fb max=%db peak=%db acc=%a"
    r.tracker r.ops r.updates r.forks r.joins r.final.frontier
    r.final.mean_bits r.final.max_bits r.peak_bits pp_accuracy r.accuracy

let to_row r =
  [
    r.tracker;
    string_of_int r.ops;
    string_of_int r.final.frontier;
    Printf.sprintf "%.1f" r.final.mean_bits;
    Printf.sprintf "%.0f" r.final.p95_bits;
    string_of_int r.final.max_bits;
    string_of_int r.peak_bits;
    Format.asprintf "%a" pp_accuracy r.accuracy;
  ]

let header =
  [
    "tracker";
    "ops";
    "frontier";
    "mean bits";
    "p95 bits";
    "max bits";
    "peak bits";
    "accuracy";
  ]
