(** Textual serialization of execution traces.

    The format mirrors {!Vstamp_core.Execution.op_to_string}:
    semicolon-separated [update(I)], [fork(I)] and [join(I,J)] tokens,
    whitespace-tolerant.  Parsing validates the trace against the
    positional semantics (every op applicable when played from the
    initial single-element frontier), so a loaded trace is always
    runnable.  Used by the CLI to reproduce experiments from files. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val to_string : Vstamp_core.Execution.op list -> string

val of_string : string -> (Vstamp_core.Execution.op list, error) result
(** Parse and validate.  The empty string is the empty trace. *)

val save : file:string -> Vstamp_core.Execution.op list -> unit

val load : file:string -> (Vstamp_core.Execution.op list, error) result

val stats : Vstamp_core.Execution.op list -> int * int * int
(** [(updates, forks, joins)]. *)
