(** Distributed synchronization by identity hand-off over a message layer.

    Version stamps synchronize by [join] then [fork] — which requires the
    two replicas to meet.  Over a network that means {e sending the
    replica}: the initiator wire-encodes its stamp (via
    {!Vstamp_codec.Wire}), ships it to the peer and retires locally; the
    peer joins, forks, keeps one half and returns the other; the
    initiator adopts it.  While its identity is in flight a node performs
    no updates.  A request reaching a node whose own identity is in
    flight bounces back unchanged (a refused sync), keeping the protocol
    deadlock-free under arbitrary message reordering.

    The transport delays and reorders but never drops or duplicates —
    replica hand-off needs reliability, for stamps exactly as for
    dynamic version vectors.  Causal histories ride along as the oracle:
    {!consistent_with_oracle} checks every live pair after any schedule. *)

type t

exception Protocol_error of string
(** A malformed wire stamp or a reply reaching a non-waiting node —
    impossible under correct use; surfaced for the fuzz tests. *)

val create : nodes:int -> t
(** [nodes] replicas forked from one seed, all idle, no messages.
    @raise Invalid_argument if [nodes < 1]. *)

val node_count : t -> int

val is_idle : t -> int -> bool

val stamp_of : t -> int -> Vstamp_core.Stamp.t option
(** [None] while the node's identity is in flight. *)

val history_of : t -> int -> Vstamp_core.Causal_history.t option

val inflight_count : t -> int

val quiescent : t -> bool
(** No messages in flight and nobody waiting. *)

(** {1 Events} *)

val update : t -> int -> t option
(** Local update at a node; [None] if it is waiting. *)

val start_sync : t -> from:int -> target:int -> t option
(** Ship [from]'s replica towards [target]; [None] if [from] is waiting.
    @raise Invalid_argument on a self-sync. *)

val deliver : t -> int -> t option
(** Deliver the k-th in-flight message (any index: the transport
    reorders); [None] if the index is out of range. *)

(** {1 Random driver} *)

type schedule = { p_update : float; p_sync : float }
(** Remaining probability mass delivers a random in-flight message. *)

val default_schedule : schedule

val step : ?schedule:schedule -> Rng.t -> t -> t * Rng.t

val drain : t -> t
(** Deliver everything in flight (in queue order) until quiescent.
    @raise Protocol_error if the network fails to quiesce. *)

val run : ?schedule:schedule -> seed:int -> steps:int -> nodes:int -> unit -> t
(** [steps] random events from a fresh network, then {!drain}. *)

(** {1 Whole-network checks} *)

val consistent_with_oracle : t -> bool
(** Every pair of live replicas ordered identically by stamps and by the
    causal histories carried alongside. *)

val frontier : t -> Vstamp_core.Stamp.t list
(** Stamps of the idle nodes. *)

val total_bits : t -> int

val stats : t -> int * int * int
(** [(updates, syncs started, messages delivered)]. *)
