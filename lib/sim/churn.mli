(** Replica-churn scenario: high-rate autonomous fork/retire under
    partition weather, observed by the identity-space observatory.

    The paper's motivating workload: replicas are created by {e fork}
    (no id server — the operation is autonomous and never blocked by a
    partition) and destroyed by {e retire} (a join into a surviving
    replica, which {e does} need connectivity and is weather-gated,
    like ordinary syncs).  The scenario drives a stamp population
    through that lifecycle while a lockstep {!Vstamp_vv.Dynamic_vv}
    lane mirrors every operation, so one run yields both sides of the
    E17 comparison: stamp id digits reclaimed by join/reduce versus
    dynamic-VV retired-entry baggage awaiting garbage collection.

    Every round the live id fragments are fed to
    {!Vstamp_obs.Idspace}, the partition-of-unity audit runs, and the
    [vstamp_idspace_*] / [sim_churn_*] families are published.  The
    run is deterministic in [config.seed]. *)

type config = {
  replicas : int;  (** initial population *)
  min_replicas : int;  (** retires stop at this floor *)
  max_replicas : int;  (** forks stop at this ceiling *)
  rounds : int;
  p_update : float;  (** per-replica update probability per round *)
  syncs_per_round : int;  (** weather-gated pairwise syncs per round *)
  churn_rate : float;
      (** expected forks per round, and independently expected retire
          attempts per round *)
  gc_every : int;  (** dynamic-VV {!Vstamp_vv.Dynamic_vv.gc} sweep cadence *)
  severity : float;  (** partition weather severity, 0..1 *)
  seed : int;
  epoch : int;  (** weather epoch length in rounds *)
  inject_corruption : int option;
      (** fault injection: at this round, corrupt one live replica's
          fragment inventory (an overlapping fragment) so the
          partition-of-unity audit must produce a witness *)
}

val default_config : config

type round_obs = {
  round : int;
  live : int;
  id_bits : int;
  fragments : int;
  entropy : float;
  dvv_retired_entries : int;
  violations : int;
}

type result = {
  rounds : int;
  updates : int;
  syncs : int;
  blocked_syncs : int;
  forks : int;  (** churn forks (initial population setup not counted) *)
  retires : int;
  blocked_retires : int;  (** retire attempts refused by the weather *)
  peak_replicas : int;
  final_replicas : int;
  (* stamp lane *)
  stamp_id_bits : int;  (** final total id digits across the live set *)
  stamp_peak_id_bits : int;
  stamp_id_width : int;  (** final total fragment count *)
  stamp_peak_id_width : int;
  stamp_max_depth : int;
  stamp_size_bits : int;  (** final total stamp wire size *)
  reclaimed_bits : int;  (** cumulative digits reclaimed by join/reduce *)
  fork_bits : int;  (** cumulative digits added by forks *)
  oracle_bits : int;  (** minimum digits for the final population size *)
  entropy : float;
  oracle_entropy : float;
  reduce_effectiveness : float;
  (* dynamic-VV lane *)
  dvv_entries : int;  (** final total entries including baggage *)
  dvv_retired_entries : int;  (** final retired-entry baggage width *)
  dvv_peak_retired_entries : int;
  dvv_size_bits : int;
  dvv_peak_size_bits : int;
  dvv_gc_dropped : int;  (** baggage entries reclaimed by gc sweeps *)
  relation_mismatches : int;
      (** pairs where stamp order and dynamic-VV order disagree; both
          trackers are accurate, so anything nonzero is a bug *)
  audit : Vstamp_obs.Idspace.audit;
      (** the first failing audit if any round failed, else the final
          round's (clean) audit *)
  audit_clean : bool;  (** every observed round's audit had no violations *)
  genealogy : Vstamp_obs.Idspace.t;
      (** the full inventory, for DOT/JSON export *)
}

val run :
  ?registry:Vstamp_obs.Registry.t ->
  ?on_round:(round_obs -> unit) ->
  config ->
  result
(** Run the scenario over the default stamp backend.
    @raise Invalid_argument on a malformed config ([replicas < 1],
    [min_replicas < 1], [max_replicas < replicas], negative rates). *)
