open Vstamp_core

type weights = { update : int; fork : int; join : int }

let default_weights = { update = 3; fork = 2; join = 2 }

(* --- random uniform workload --- *)

let uniform ?(seed = 1) ?(weights = default_weights) ?(max_frontier = 16)
    ~n_ops () =
  let rec build rng size k acc =
    if k = 0 then List.rev acc
    else
      let candidates =
        List.concat
          [
            [ (weights.update, `Update) ];
            (if size < max_frontier then [ (weights.fork, `Fork) ] else []);
            (if size >= 2 then [ (weights.join, `Join) ] else []);
          ]
      in
      let kind, rng = Rng.pick_weighted rng candidates in
      match kind with
      | `Update ->
          let i, rng = Rng.int rng size in
          build rng size (k - 1) (Execution.Update i :: acc)
      | `Fork ->
          let i, rng = Rng.int rng size in
          build rng (size + 1) (k - 1) (Execution.Fork i :: acc)
      | `Join ->
          let i, rng = Rng.int rng size in
          let j0, rng = Rng.int rng (size - 1) in
          let j = if j0 >= i then j0 + 1 else j0 in
          build rng (size - 1) (k - 1) (Execution.Join (i, j) :: acc)
  in
  build (Rng.make seed) 1 n_ops []

(* --- deep forking: join-free growth, the stamp worst case --- *)

let deep_fork ?(update_between = true) ~depth () =
  List.concat_map
    (fun i ->
      (* always fork the newest replica, optionally updating it first *)
      if update_between then [ Execution.Update i; Execution.Fork i ]
      else [ Execution.Fork i ])
    (List.init depth (fun i -> i))

(* --- label tracking: follow logical replicas through positions --- *)

module Labels = struct
  (* a value of this module is an [int list]: the logical replica label
     at each frontier position *)

  let apply ~fresh labels op =
    match op with
    | Execution.Update _ -> (labels, fresh)
    | Execution.Fork i ->
        ( Execution.fork_positions labels i ~left:(List.nth labels i)
            ~right:fresh,
          fresh + 1 )
    | Execution.Join (i, j) ->
        (Execution.join_positions labels i j ~merged:(List.nth labels i), fresh)

  let position labels l =
    let rec go k = function
      | [] -> raise Not_found
      | x :: _ when x = l -> k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 labels
end

(* A sync keeps both replicas alive: join then fork at the landing spot.
   The left fork result keeps label [a], the right keeps label [b]. *)
let sync_ops labels fresh a b =
  let i = Labels.position labels a and j = Labels.position labels b in
  let join = Execution.Join (i, j) in
  let labels, fresh = Labels.apply ~fresh labels join in
  let lo = Labels.position labels a in
  let fork = Execution.Fork lo in
  (* relabel: left keeps a, right becomes b again *)
  let labels, _ = Labels.apply ~fresh:b labels fork in
  (labels, fresh, [ join; fork ])

(* --- star synchronization: the classic fixed-replica-set setting --- *)

let sync_star ?(updates_per_round = 1) ~peers ~rounds () =
  if peers < 1 then invalid_arg "Workload.sync_star: peers must be >= 1";
  (* grow: hub is label 0; fork out peer labels 1..peers *)
  let labels = ref [ 0 ] and fresh = ref 1 and ops = ref [] in
  for _ = 1 to peers do
    let hub = Labels.position !labels 0 in
    let op = Execution.Fork hub in
    let labels', fresh' = Labels.apply ~fresh:!fresh !labels op in
    labels := labels';
    fresh := fresh';
    ops := op :: !ops
  done;
  for _ = 1 to rounds do
    for p = 1 to peers do
      (* the peer updates, then syncs with the hub *)
      for _ = 1 to updates_per_round do
        ops := Execution.Update (Labels.position !labels p) :: !ops
      done;
      let labels', fresh', sync = sync_ops !labels !fresh 0 p in
      labels := labels';
      fresh := fresh';
      ops := List.rev_append sync !ops
    done
  done;
  List.rev !ops

(* --- steady-state gossip: fixed frontier, random pairwise syncs --- *)

let gossip ?(seed = 1) ?(p_update = 0.5) ~replicas ~rounds () =
  if replicas < 2 then invalid_arg "Workload.gossip: need at least 2 replicas";
  let labels = ref [ 0 ] and fresh = ref 1 and ops = ref [] in
  for _ = 2 to replicas do
    (* fork from the last-born replica to spread id depth *)
    let donor = Labels.position !labels (!fresh - 1) in
    let op = Execution.Fork donor in
    let labels', fresh' = Labels.apply ~fresh:!fresh !labels op in
    labels := labels';
    fresh := fresh';
    ops := op :: !ops
  done;
  let rng = ref (Rng.make seed) in
  for _ = 1 to rounds do
    let size = List.length !labels in
    List.iteri
      (fun pos _ ->
        let doit, rng' = Rng.below !rng p_update in
        rng := rng';
        if doit then ops := Execution.Update pos :: !ops)
      !labels;
    let i, rng' = Rng.int !rng size in
    let j0, rng'' = Rng.int rng' (size - 1) in
    rng := rng'';
    let j = if j0 >= i then j0 + 1 else j0 in
    let a = List.nth !labels i and b = List.nth !labels j in
    let labels', fresh', sync = sync_ops !labels !fresh a b in
    labels := labels';
    fresh := fresh';
    ops := List.rev_append sync !ops
  done;
  List.rev !ops

(* --- churn: random births and deaths around a target frontier size --- *)

let churn ?(seed = 1) ?(p_update = 0.4) ~target ~n_ops () =
  if target < 2 then invalid_arg "Workload.churn: target must be >= 2";
  let rec build rng size k acc =
    if k = 0 then List.rev acc
    else
      let upd, rng = Rng.below rng p_update in
      if upd then
        let i, rng = Rng.int rng size in
        build rng size (k - 1) (Execution.Update i :: acc)
      else
        let grow, rng = Rng.below rng (if size <= target then 0.7 else 0.3) in
        if grow || size < 2 then
          let i, rng = Rng.int rng size in
          build rng (size + 1) (k - 1) (Execution.Fork i :: acc)
        else
          let i, rng = Rng.int rng size in
          let j0, rng = Rng.int rng (size - 1) in
          let j = if j0 >= i then j0 + 1 else j0 in
          build rng (size - 1) (k - 1) (Execution.Join (i, j) :: acc)
  in
  build (Rng.make seed) 1 n_ops []

(* --- partitioned operation with periodic heals --- *)

let partitioned ?(seed = 1) ?(p_update = 0.5) ~replicas ~groups ~phases
    ~syncs_per_phase () =
  if groups < 1 then invalid_arg "Workload.partitioned: groups must be >= 1";
  if replicas < 2 * groups then
    invalid_arg "Workload.partitioned: need at least 2 replicas per group";
  let ops = ref [] and labels = ref [ 0 ] and fresh = ref 1 in
  let emit op =
    let labels', fresh' = Labels.apply ~fresh:!fresh !labels op in
    labels := labels';
    fresh := fresh';
    ops := op :: !ops
  in
  for _ = 2 to replicas do
    emit (Execution.Fork (List.length !labels - 1))
  done;
  let rng = ref (Rng.make seed) in
  let group_of_label l = l mod groups in
  for phase = 1 to phases do
    (* during odd phases operate partitioned; even phases are heals where
       any pair may sync *)
    let healed = phase mod 2 = 0 in
    for _ = 1 to syncs_per_phase do
      (* random updates *)
      List.iteri
        (fun pos _ ->
          let doit, rng' = Rng.below !rng p_update in
          rng := rng';
          if doit then ops := Execution.Update pos :: !ops)
        !labels;
      (* pick a pair allowed by the current phase *)
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                if a < b && (healed || group_of_label a = group_of_label b)
                then Some (a, b)
                else None)
              !labels)
          !labels
      in
      match pairs with
      | [] -> ()
      | _ ->
          let (a, b), rng' = Rng.pick !rng pairs in
          rng := rng';
          let labels', fresh', sync = sync_ops !labels !fresh a b in
          labels := labels';
          fresh := fresh';
          ops := List.rev_append sync !ops
    done
  done;
  List.rev !ops

let all_named ~n_ops =
  [
    ("uniform", uniform ~seed:7 ~n_ops ());
    ("deep-fork", deep_fork ~depth:(max 1 (n_ops / 2)) ());
    ("sync-star", sync_star ~peers:8 ~rounds:(max 1 (n_ops / 32)) ());
    ("gossip", gossip ~seed:7 ~replicas:8 ~rounds:(max 1 (n_ops / 10)) ());
    ("churn", churn ~seed:7 ~target:8 ~n_ops ());
    ( "partitioned",
      partitioned ~seed:7 ~replicas:8 ~groups:2 ~phases:4
        ~syncs_per_phase:(max 1 (n_ops / 40)) () );
  ]
