open Vstamp_core

type error = { position : int; message : string }

let pp_error ppf e = Format.fprintf ppf "op %d: %s" e.position e.message

let to_string ops = String.concat ";" (List.map Execution.op_to_string ops)

(* Grammar: ops separated by ';' (whitespace allowed), each one of
   update(I) | fork(I) | join(I,J).  Empty input is the empty trace. *)
let parse_op pos token =
  let token = String.trim token in
  let fail message = Error { position = pos; message } in
  let parse_args name body k =
    match String.index_opt body '(' with
    | Some 0 when String.length body >= 2 && body.[String.length body - 1] = ')'
      ->
        k (String.sub body 1 (String.length body - 2))
    | _ -> fail (Printf.sprintf "expected %s(...)" name)
  in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some i when i >= 0 -> Ok i
    | _ -> fail (Printf.sprintf "bad index %S" s)
  in
  if String.length token >= 6 && String.sub token 0 6 = "update" then
    parse_args "update"
      (String.sub token 6 (String.length token - 6))
      (fun body ->
        Result.map (fun i -> Execution.Update i) (int_of body))
  else if String.length token >= 4 && String.sub token 0 4 = "fork" then
    parse_args "fork"
      (String.sub token 4 (String.length token - 4))
      (fun body -> Result.map (fun i -> Execution.Fork i) (int_of body))
  else if String.length token >= 4 && String.sub token 0 4 = "join" then
    parse_args "join"
      (String.sub token 4 (String.length token - 4))
      (fun body ->
        match String.split_on_char ',' body with
        | [ a; b ] ->
            Result.bind (int_of a) (fun i ->
                Result.map (fun j -> Execution.Join (i, j)) (int_of b))
        | _ -> fail "join needs two indices")
  else fail (Printf.sprintf "unknown operation %S" token)

let of_string input =
  let tokens =
    String.split_on_char ';' input
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec go pos acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
        match parse_op pos t with
        | Ok op -> go (pos + 1) (op :: acc) rest
        | Error e -> Error e)
  in
  match go 0 [] tokens with
  | Error e -> Error e
  | Ok ops ->
      (* locate the first invalid op for a precise report *)
      let rec check pos size = function
        | [] -> Ok ops
        | op :: rest ->
            if Execution.op_valid ~frontier_size:size op then
              check (pos + 1) (size + Execution.size_delta op) rest
            else
              Error
                {
                  position = pos;
                  message =
                    Printf.sprintf "%s invalid at frontier size %d"
                      (Execution.op_to_string op)
                      size;
                }
      in
      check 0 1 ops

let save ~file ops =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ops);
      output_char oc '\n')

let load ~file =
  let ic = open_in file in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string (String.trim content)

let stats ops =
  let u, f, j =
    List.fold_left
      (fun (u, f, j) -> function
        | Execution.Update _ -> (u + 1, f, j)
        | Execution.Fork _ -> (u, f + 1, j)
        | Execution.Join _ -> (u, f, j + 1))
      (0, 0, 0) ops
  in
  (u, f, j)
