module Stamp = Vstamp_core.Stamp
module Name = Vstamp_core.Name_tree
module Bits = Vstamp_core.Bits
module Dvv = Vstamp_vv.Dynamic_vv
module Idspace = Vstamp_obs.Idspace

type config = {
  replicas : int;
  min_replicas : int;
  max_replicas : int;
  rounds : int;
  p_update : float;
  syncs_per_round : int;
  churn_rate : float;
  gc_every : int;
  severity : float;
  seed : int;
  epoch : int;
  inject_corruption : int option;
}

let default_config =
  {
    replicas = 4;
    min_replicas = 2;
    max_replicas = 16;
    rounds = 16;
    p_update = 0.5;
    syncs_per_round = 2;
    churn_rate = 1.0;
    gc_every = 1;
    severity = 0.4;
    seed = 42;
    epoch = 4;
    inject_corruption = None;
  }

type round_obs = {
  round : int;
  live : int;
  id_bits : int;
  fragments : int;
  entropy : float;
  dvv_retired_entries : int;
  violations : int;
}

type result = {
  rounds : int;
  updates : int;
  syncs : int;
  blocked_syncs : int;
  forks : int;
  retires : int;
  blocked_retires : int;
  peak_replicas : int;
  final_replicas : int;
  stamp_id_bits : int;
  stamp_peak_id_bits : int;
  stamp_id_width : int;
  stamp_peak_id_width : int;
  stamp_max_depth : int;
  stamp_size_bits : int;
  reclaimed_bits : int;
  fork_bits : int;
  oracle_bits : int;
  entropy : float;
  oracle_entropy : float;
  reduce_effectiveness : float;
  dvv_entries : int;
  dvv_retired_entries : int;
  dvv_peak_retired_entries : int;
  dvv_size_bits : int;
  dvv_peak_size_bits : int;
  dvv_gc_dropped : int;
  relation_mismatches : int;
  audit : Idspace.audit;
  audit_clean : bool;
  genealogy : Idspace.t;
}

(* One live replica: the stamp, its dynamic-VV mirror, and its node in
   the genealogy inventory. *)
type replica = {
  rname : string;
  stamp : Stamp.t;
  dvv : Dvv.t;
  node : Idspace.node_id;
}

let frags s = List.map Bits.to_string (Name.to_list (Stamp.id s))

let validate cfg =
  if cfg.replicas < 1 then invalid_arg "Churn.run: replicas < 1";
  if cfg.min_replicas < 1 then invalid_arg "Churn.run: min_replicas < 1";
  if cfg.max_replicas < cfg.replicas then
    invalid_arg "Churn.run: max_replicas < replicas";
  if cfg.rounds < 0 then invalid_arg "Churn.run: negative rounds";
  if cfg.churn_rate < 0. then invalid_arg "Churn.run: negative churn_rate";
  if cfg.gc_every < 1 then invalid_arg "Churn.run: gc_every < 1";
  if cfg.syncs_per_round < 0 then
    invalid_arg "Churn.run: negative syncs_per_round"

let run ?registry ?on_round (cfg : config) =
  validate cfg;
  let module Tr = Vstamp_obs.Trace_ctx in
  let module J = Vstamp_obs.Jsonx in
  Tr.with_span "churn.run"
    ~attrs:
      [
        ("replicas", J.Int cfg.replicas);
        ("rounds", J.Int cfg.rounds);
        ("churn_rate", J.Float cfg.churn_rate);
      ]
  @@ fun () ->
  let inv = Idspace.create () in
  let rng = ref (Rng.make cfg.seed) in
  let draw f =
    let v, rng' = f !rng in
    rng := rng';
    v
  in
  let next_name = ref 0 in
  let fresh_name () =
    let n = Printf.sprintf "r%d" !next_name in
    incr next_name;
    n
  in
  let next_dvv_id = ref 0 in
  let fresh_dvv_id () =
    let i = !next_dvv_id in
    incr next_dvv_id;
    i
  in
  (* seed one replica owning the whole space, then fork out to the
     initial population (setup forks are not counted in the result) *)
  let pop = ref [| |] in
  let () =
    let name0 = fresh_name () in
    let s0 = Stamp.seed in
    let r0 =
      {
        rname = name0;
        stamp = s0;
        dvv = Dvv.create ~id:(fresh_dvv_id ());
        node = Idspace.seed ~label:name0 inv (frags s0);
      }
    in
    pop := [| r0 |]
  in
  let do_fork k =
    let r = (!pop).(k) in
    let sa, sb = Stamp.fork r.stamp in
    let da, db = Dvv.fork r.dvv ~new_id:(fresh_dvv_id ()) in
    let bname = fresh_name () in
    let na, nb =
      Idspace.fork ~labels:(r.rname, bname) inv r.node ~left:(frags sa)
        ~right:(frags sb)
    in
    let a = { rname = r.rname; stamp = sa; dvv = da; node = na } in
    let b = { rname = bname; stamp = sb; dvv = db; node = nb } in
    let n = Array.length !pop in
    pop :=
      Array.init (n + 1) (fun i ->
          if i < n then if i = k then a else (!pop).(i) else b)
  in
  while Array.length !pop < cfg.replicas do
    do_fork (Array.length !pop - 1)
  done;
  let weather =
    Weather.make ~seed:cfg.seed ~epoch:cfg.epoch ~severity:cfg.severity ()
  in
  let updates = ref 0 in
  let syncs = ref 0 in
  let blocked_syncs = ref 0 in
  let forks = ref 0 in
  let retires = ref 0 in
  let blocked_retires = ref 0 in
  let gc_dropped = ref 0 in
  let mismatches = ref 0 in
  let peak_replicas = ref (Array.length !pop) in
  let peak_id_bits = ref 0 in
  let peak_id_width = ref 0 in
  let peak_dvv_retired = ref 0 in
  let peak_dvv_bits = ref 0 in
  let first_bad_audit = ref None in
  let update k =
    incr updates;
    let r = (!pop).(k) in
    let r' = { r with stamp = Stamp.update r.stamp; dvv = Dvv.update r.dvv } in
    (!pop).(k) <- r';
    Idspace.refresh inv r'.node (frags r'.stamp)
  in
  let sync i j =
    incr syncs;
    let a = (!pop).(i) and b = (!pop).(j) in
    let sa, sb = Stamp.sync a.stamp b.stamp in
    let da, db = Dvv.sync a.dvv b.dvv in
    (!pop).(i) <- { a with stamp = sa; dvv = da };
    (!pop).(j) <- { b with stamp = sb; dvv = db };
    Idspace.refresh inv a.node (frags sa);
    Idspace.refresh inv b.node (frags sb)
  in
  (* retiree [i] hands its state to survivor [j]: a stamp join (with
     the Section 6 reduction reclaiming id digits) mirrored by
     dynamic-VV retire+absorb (the baggage-creating step) *)
  let retire i j =
    incr retires;
    let ri = (!pop).(i) and rj = (!pop).(j) in
    let joined = Stamp.join rj.stamp ri.stamp in
    let dj = Dvv.absorb rj.dvv (Dvv.retire ri.dvv) in
    let node =
      Idspace.retire ~label:rj.rname inv ~survivor:rj.node ri.node
        (frags joined)
    in
    let rj' = { rj with stamp = joined; dvv = dj; node } in
    let n = Array.length !pop in
    let out = Array.make (n - 1) rj' in
    let w = ref 0 in
    Array.iteri
      (fun k r ->
        if k <> i then begin
          out.(!w) <- (if k = j then rj' else r);
          incr w
        end)
      !pop;
    pop := out
  in
  let churn_trials = int_of_float (ceil cfg.churn_rate) in
  let churn_p =
    if churn_trials = 0 then 0.
    else cfg.churn_rate /. float_of_int churn_trials
  in
  let gc_sweep () =
    let live = Array.to_list (Array.map (fun r -> r.dvv) !pop) in
    Array.iteri
      (fun k r ->
        let before = Dvv.retired_entry_count r.dvv in
        let d = Dvv.gc ~live r.dvv in
        gc_dropped := !gc_dropped + before - Dvv.retired_entry_count d;
        (!pop).(k) <- { r with dvv = d })
      !pop
  in
  let observe round =
    (match cfg.inject_corruption with
    | Some r when r = round && Array.length !pop > 0 ->
        (* an overlapping fragment: extend the victim's first fragment
           by one digit and keep both — the audit must witness it *)
        let victim = (!pop).(0) in
        let f = frags victim.stamp in
        let extra = (match f with s :: _ -> s | [] -> "") ^ "0" in
        Idspace.refresh inv victim.node (f @ [ extra ])
    | _ -> ());
    let s = Idspace.stats inv in
    let a = Idspace.audit inv in
    if a.Idspace.violations <> [] && !first_bad_audit = None then
      first_bad_audit := Some a;
    let n = Array.length !pop in
    peak_replicas := max !peak_replicas n;
    peak_id_bits := max !peak_id_bits s.Idspace.id_bits;
    peak_id_width := max !peak_id_width s.Idspace.fragments;
    let dvv_retired =
      Array.fold_left (fun acc r -> acc + Dvv.retired_entry_count r.dvv) 0 !pop
    in
    let dvv_bits =
      Array.fold_left (fun acc r -> acc + Dvv.size_bits r.dvv) 0 !pop
    in
    peak_dvv_retired := max !peak_dvv_retired dvv_retired;
    peak_dvv_bits := max !peak_dvv_bits dvv_bits;
    (* both lanes are accurate causality trackers, so their orders
       must coincide on every live pair *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = (!pop).(i) and b = (!pop).(j) in
        if
          Stamp.leq a.stamp b.stamp <> Dvv.leq a.dvv b.dvv
          || Stamp.leq b.stamp a.stamp <> Dvv.leq b.dvv a.dvv
        then incr mismatches
      done
    done;
    (match registry with
    | None -> ()
    | Some reg ->
        let module R = Vstamp_obs.Registry in
        let module M = Vstamp_obs.Metric in
        Idspace.publish ~registry:reg inv;
        M.set (R.gauge reg "sim_churn_population") (float_of_int n);
        M.set
          (R.gauge reg "sim_churn_dvv_retired_entries")
          (float_of_int dvv_retired);
        M.set (R.gauge reg "sim_churn_dvv_size_bits") (float_of_int dvv_bits);
        M.set
          (R.gauge reg "sim_churn_stamp_size_bits")
          (float_of_int
             (Array.fold_left
                (fun acc r -> acc + Stamp.size_bits r.stamp)
                0 !pop)));
    (match on_round with
    | None -> ()
    | Some f ->
        f
          {
            round;
            live = n;
            id_bits = s.Idspace.id_bits;
            fragments = s.Idspace.fragments;
            entropy = s.Idspace.entropy;
            dvv_retired_entries = dvv_retired;
            violations = List.length a.Idspace.violations;
          })
  in
  (* counters shared across runs on one registry: publish growth only *)
  let pub = Array.make 7 0 in
  let publish_counters () =
    match registry with
    | None -> ()
    | Some reg ->
        let module R = Vstamp_obs.Registry in
        let module M = Vstamp_obs.Metric in
        let delta i cur name =
          let d = cur - pub.(i) in
          if d > 0 then M.add (R.counter reg name) d;
          pub.(i) <- cur
        in
        delta 0 !updates "sim_churn_updates_total";
        delta 1 !syncs "sim_churn_syncs_total";
        delta 2 !blocked_syncs "sim_churn_blocked_syncs_total";
        delta 3 !forks "sim_churn_forks_total";
        delta 4 !retires "sim_churn_retires_total";
        delta 5 !blocked_retires "sim_churn_blocked_retires_total";
        delta 6 !gc_dropped "sim_churn_gc_dropped_total"
  in
  for round = 0 to cfg.rounds - 1 do
    let n () = Array.length !pop in
    for i = 0 to n () - 1 do
      if draw (fun r -> Rng.below r cfg.p_update) then update i
    done;
    (* autonomous forks: never weather-gated — the paper's point *)
    for _ = 1 to churn_trials do
      if n () < cfg.max_replicas && draw (fun r -> Rng.below r churn_p) then begin
        incr forks;
        do_fork (draw (fun r -> Rng.int r (n ())))
      end
    done;
    (* retires need connectivity between retiree and survivor *)
    for _ = 1 to churn_trials do
      if n () > cfg.min_replicas && draw (fun r -> Rng.below r churn_p) then begin
        let i = draw (fun r -> Rng.int r (n ())) in
        let j = draw (fun r -> Rng.int r (n () - 1)) in
        let j = if j >= i then j + 1 else j in
        if Weather.allowed weather ~step:round ~n:(n ()) i j then retire i j
        else incr blocked_retires
      end
    done;
    for _ = 1 to cfg.syncs_per_round do
      if n () >= 2 then begin
        let i = draw (fun r -> Rng.int r (n ())) in
        let j = draw (fun r -> Rng.int r (n () - 1)) in
        let j = if j >= i then j + 1 else j in
        if Weather.allowed weather ~step:round ~n:(n ()) i j then sync i j
        else incr blocked_syncs
      end
    done;
    if (round + 1) mod cfg.gc_every = 0 then gc_sweep ();
    observe round;
    publish_counters ()
  done;
  if cfg.rounds = 0 then observe 0;
  publish_counters ();
  let s = Idspace.stats inv in
  let final_audit = Idspace.audit inv in
  let audit, audit_clean =
    match !first_bad_audit with
    | Some a -> (a, false)
    | None -> (final_audit, final_audit.Idspace.violations = [])
  in
  {
    rounds = cfg.rounds;
    updates = !updates;
    syncs = !syncs;
    blocked_syncs = !blocked_syncs;
    forks = !forks;
    retires = !retires;
    blocked_retires = !blocked_retires;
    peak_replicas = !peak_replicas;
    final_replicas = Array.length !pop;
    stamp_id_bits = s.Idspace.id_bits;
    stamp_peak_id_bits = !peak_id_bits;
    stamp_id_width = s.Idspace.fragments;
    stamp_peak_id_width = !peak_id_width;
    stamp_max_depth = s.Idspace.max_depth;
    stamp_size_bits =
      Array.fold_left (fun acc r -> acc + Stamp.size_bits r.stamp) 0 !pop;
    reclaimed_bits = Idspace.reclaimed_bits inv;
    fork_bits = Idspace.fork_bits inv;
    oracle_bits = s.Idspace.oracle_bits;
    entropy = s.Idspace.entropy;
    oracle_entropy = s.Idspace.oracle_entropy;
    reduce_effectiveness = s.Idspace.reduce_effectiveness;
    dvv_entries =
      Array.fold_left (fun acc r -> acc + Dvv.entry_count r.dvv) 0 !pop;
    dvv_retired_entries =
      Array.fold_left
        (fun acc r -> acc + Dvv.retired_entry_count r.dvv)
        0 !pop;
    dvv_peak_retired_entries = !peak_dvv_retired;
    dvv_size_bits =
      Array.fold_left (fun acc r -> acc + Dvv.size_bits r.dvv) 0 !pop;
    dvv_peak_size_bits = !peak_dvv_bits;
    dvv_gc_dropped = !gc_dropped;
    relation_mismatches = !mismatches;
    audit;
    audit_clean;
    genealogy = inv;
  }
