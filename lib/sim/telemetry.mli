(** Bridge between the core's {!Vstamp_core.Instr} hook and the
    {!Vstamp_obs} registry.

    [attach ~registry ()] enables core instrumentation and installs an
    observer that mirrors every stamp operation into the registry:

    - [core_stamp_ops_total{op=...}] — counters per operation kind
    - [core_stamp_bits{op=...}] — histogram of result sizes (bits)
    - [core_stamp_depth] / [core_stamp_id_width] — histograms of the
      result's name depth and id width after each operation

    [sync_counters registry] copies the cumulative {!Vstamp_core.Instr}
    counters (op counts, reduction rewrites and bits saved, wire codec
    bytes) into gauges of the registry, so one snapshot shows
    everything.  All of these values are deterministic for a
    deterministic run. *)

val attach : ?registry:Vstamp_obs.Registry.t -> unit -> unit
(** Enable {!Vstamp_core.Instr} and install the registry observer. *)

val detach : unit -> unit
(** Disable instrumentation and remove the observer. *)

val counter_fields : unit -> (string * int) list
(** The current {!Vstamp_core.Instr} counters as labelled values, in a
    fixed order. *)

val sync_counters : Vstamp_obs.Registry.t -> unit
(** Publish the current {!Vstamp_core.Instr} counters as
    [core_*] / [wire_*] gauges. *)

val counters_event : ?step:int -> unit -> Vstamp_obs.Event.t
(** The current {!Vstamp_core.Instr} counters as a [core.counters]
    event (deterministic; suitable for a JSONL stream). *)

(** {1 Invariant witnesses} *)

val violation_to_json : Vstamp_core.Invariants.violation -> Vstamp_obs.Jsonx.t
(** [{"invariant": "I2", "at": [i, j]}] — the structured form of the
    core witness type, used by the [invariant.violation] events. *)

val violation_witness :
  violations:Vstamp_core.Invariants.violation list ->
  order_failures:int list ->
  (string * Vstamp_obs.Jsonx.t) list
(** Witness fields for {!Vstamp_obs.Monitor.check}: the serialized
    I1–I3 violations plus frontier positions whose tracker order failed
    the reflexivity sanity check.  Empty iff both lists are empty. *)
