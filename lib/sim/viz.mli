(** ASCII diagrams of executions, in the spirit of the paper's Figure 2.

    One row per replica lineage, one four-character column per operation:
    [--*-] marks an update (the paper's dotted arrow), [--+<]/[  `-] a
    fork opening a child lineage, [--+-]/[--'.] a join retiring the
    higher lineage into the lower.  Optionally labels each surviving
    lineage with its final stamp.  Used by [vstamp draw] and handy when
    staring at a counterexample trace from the property tests. *)

val to_string :
  ?stamps:Vstamp_core.Stamp.t list -> Vstamp_core.Execution.op list -> string
(** Render a valid trace; [stamps] (typically the final frontier) adds
    end-of-row labels and must be frontier-aligned. *)

val draw : ?with_stamps:bool -> Vstamp_core.Execution.op list -> string
(** Convenience: runs the trace over default stamps when
    [with_stamps = true] and labels rows with the outcome. *)

val header : Vstamp_core.Execution.op list -> string
(** The operation names, one per column, for captioning. *)

val to_dot : Vstamp_core.Execution.op list -> string
(** Graphviz digraph of the trace's causal event DAG, one node per
    replica state labelled with its stamp in paper notation.  Labels are
    escaped — quotes, backslashes and newlines in label text cannot
    break the DOT syntax (stamp notation's [+] and [|] need no escaping
    inside DOT quoted strings, but the escaper must not mangle them
    either). *)
