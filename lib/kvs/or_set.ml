open Vstamp_vv

module Dot_map = Map.Make (struct
  type t = Dotted_vv.dot

  let compare = Dotted_vv.dot_compare
end)

module Dot_set = Set.Make (struct
  type t = Dotted_vv.dot

  let compare = Dotted_vv.dot_compare
end)

(* A causal context that can represent non-contiguous dot sets: the
   compact vector covers prefixes 1..n per replica, the cloud holds
   stragglers.  Deltas need this — the delta of a single add has seen
   exactly one dot, which no plain version vector can say. *)
module Ctx = struct
  type t = { vv : Version_vector.t; cloud : Dot_set.t }

  let empty = { vv = Version_vector.zero; cloud = Dot_set.empty }

  let covers c (d : Dotted_vv.dot) =
    Version_vector.get c.vv d.replica >= d.counter || Dot_set.mem d c.cloud

  let next c replica = Version_vector.get c.vv replica + 1

  (* fold cloud dots that have become contiguous into the vector *)
  let compact c =
    let rec go c =
      let promotable =
        Dot_set.filter
          (fun (d : Dotted_vv.dot) ->
            d.counter = Version_vector.get c.vv d.replica + 1)
          c.cloud
      in
      if Dot_set.is_empty promotable then c
      else
        go
          {
            vv =
              Dot_set.fold
                (fun (d : Dotted_vv.dot) vv ->
                  Version_vector.set vv d.replica
                    (max d.counter (Version_vector.get vv d.replica)))
                promotable c.vv;
            cloud = Dot_set.diff c.cloud promotable;
          }
    in
    let c = go c in
    { c with cloud = Dot_set.filter (fun d -> not (covers { c with cloud = Dot_set.empty } d)) c.cloud }

  let add c d = compact { c with cloud = Dot_set.add d c.cloud }

  let union a b =
    compact
      {
        vv = Version_vector.merge a.vv b.vv;
        cloud = Dot_set.union a.cloud b.cloud;
      }

  let of_dot d = add empty d

  let size_bits c =
    Version_vector.size_bits c.vv
    + Dot_set.fold
        (fun (d : Dotted_vv.dot) acc ->
          acc
          + Version_vector.bits_for d.replica
          + Version_vector.bits_for d.counter)
        c.cloud 0
end

type 'a t = {
  replica : Version_vector.id;
  entries : 'a Dot_map.t;  (* live element instances, keyed by their dot *)
  ctx : Ctx.t;  (* every dot this replica has ever seen *)
}
(* The dot-kernel construction (the delta-CRDT foundation of Almeida,
   Shoker & Baquero): each add creates a uniquely dotted instance; a
   remove drops the instances it observed, and the causal context
   remembers them so a later join cannot reintroduce them.  Add wins
   over a concurrent remove because the fresh dot escapes the remover's
   context. *)

let create ~id = { replica = id; entries = Dot_map.empty; ctx = Ctx.empty }

let replica s = s.replica

let elements s =
  Dot_map.fold (fun _ v acc -> v :: acc) s.entries []
  |> List.sort_uniq compare

let mem s v = Dot_map.exists (fun _ v' -> v' = v) s.entries

let cardinal s = List.length (elements s)

let is_empty s = Dot_map.is_empty s.entries

let add s v =
  let dot = { Dotted_vv.replica = s.replica; counter = Ctx.next s.ctx s.replica } in
  { s with entries = Dot_map.add dot v s.entries; ctx = Ctx.add s.ctx dot }

let remove s v =
  { s with entries = Dot_map.filter (fun _ v' -> v' <> v) s.entries }

let clear s = { s with entries = Dot_map.empty }

(* Dot-kernel join: an instance survives iff both sides store it, or one
   stores it and the other has never seen its dot. *)
let merge a b =
  let keep mine other_entries other_ctx =
    Dot_map.filter
      (fun dot _ -> Dot_map.mem dot other_entries || not (Ctx.covers other_ctx dot))
      mine
  in
  let from_a = keep a.entries b.entries b.ctx in
  let from_b = keep b.entries a.entries a.ctx in
  {
    a with
    entries = Dot_map.union (fun _ v _ -> Some v) from_a from_b;
    ctx = Ctx.union a.ctx b.ctx;
  }

(* --- delta mutators: ship only what changed --- *)

let add_delta s v =
  let dot = { Dotted_vv.replica = s.replica; counter = Ctx.next s.ctx s.replica } in
  { replica = s.replica; entries = Dot_map.singleton dot v; ctx = Ctx.of_dot dot }

let remove_delta s v =
  (* the removed instances' dots as pure context: joining this delta
     kills them everywhere without shipping any entries *)
  let ctx =
    Dot_map.fold
      (fun d v' acc -> if v' = v then Ctx.add acc d else acc)
      s.entries Ctx.empty
  in
  { replica = s.replica; entries = Dot_map.empty; ctx }

let apply_delta s delta = { (merge s delta) with replica = s.replica }

let well_formed s = Dot_map.for_all (fun d _ -> Ctx.covers s.ctx d) s.entries

let size_bits s =
  Ctx.size_bits s.ctx
  + Dot_map.fold
      (fun (d : Dotted_vv.dot) _ acc ->
        acc
        + Version_vector.bits_for d.replica
        + Version_vector.bits_for d.counter)
      s.entries 0

let pp pp_elt ppf s =
  Format.fprintf ppf "{%a}%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_elt)
    (elements s) Version_vector.pp s.ctx.Ctx.vv
