(** A peer-to-peer key-value replica tracked by version stamps.

    The stamp-based counterpart of {!Kv_node}: where [Kv_node] models
    the data-center architecture (fixed server ids, dotted version
    vectors, tombstoned deletes), this store models the {e ad-hoc} side
    of the identity question — any replica can be copied anywhere, with
    no id service, because every key is a stamped multi-value register
    ({!Vstamp_crdt.Mv_register}) whose identity forks locally.

    Caveats that follow from the model: keys created independently on
    two replicas share no causal context, so their first sync reports a
    conflict even for equal values; and {!remove} is a local forget with
    no tombstone — a peer that still holds the key re-introduces it on
    the next sync.

    Generic in the stamp backend via {!Make}; the top level is the
    default (tree) instantiation. *)

module Make (S : Vstamp_core.Stamp.S) : sig
  type t
  (** One replica of the store.  Immutable. *)

  val empty : t

  val keys : t -> string list
  (** Sorted. *)

  val mem : t -> string -> bool

  val get : t -> string -> string list
  (** Current candidate values: [[]] for unknown keys, a singleton when
      there is no unresolved conflict. *)

  val stamp : t -> string -> S.t option
  (** The version stamp tracking one key, if present. *)

  val put : t -> key:string -> string -> t
  (** Local write; first write of a key seeds a fresh register. *)

  val remove : t -> string -> t
  (** Local forget (no tombstone; see the module preamble). *)

  val resolve : t -> key:string -> value:string -> t
  (** Settle a conflict: the chosen value becomes a new write. *)

  val conflict : t -> string -> bool
  (** Multiple concurrent candidates currently stored for the key. *)

  val sync : t -> t -> t * t
  (** Pairwise anti-entropy over the union of the two replicas' keys;
    keys held by one side only are replicated to the other (both
    continuing the same forked lineage).  Runs on the shared
    {!Vstamp_sync.Engine} session (frontier offer → delta request →
    reconcile), composed in-process. *)

  (** {2 Wire-level session legs}

      The same session split for a transport: each leg exchanges plain
      serializable data, so a framed protocol ({!Vstamp_net}) can ship
      the legs between processes and still produce stores
      byte-identical to an in-process {!sync}.  The legs do {e not}
      charge the attached [kvs_sync_*] ledger — a networked round
      accounts to the [tally] it passes to {!reconcile}. *)

  type frontier = (string * S.t * string) list
  (** One entry per key: its stamp and a digest fingerprinting the
      candidate value set. *)

  type delta = (string * S.t * string list) list
  (** Full entries on the move: key, stamp, candidate values. *)

  val offer : t -> frontier
  (** Leg 1 (initiator): the replica's full frontier, sorted by key. *)

  val wants : t -> frontier -> string list
  (** Leg 2 (responder): the keys whose full entries are needed — ones
      this replica lacks, is dominated on, or holds concurrent/equal
      with a different candidate set. *)

  val fulfil : t -> string list -> delta
  (** Leg 3 (initiator): the requested entries. *)

  val reconcile :
    ?tally:Vstamp_sync.Ledger.t -> t -> frontier -> delta -> t * delta
  (** Leg 4 (responder): reconcile the received entries against the
      offered frontier; returns the updated replica and the
      initiator's halves to ship back. *)

  val apply : t -> delta -> t
  (** Final leg (initiator): adopt the responder's results. *)

  val converged : t -> t -> bool
  (** Same keys, same candidate value sets. *)

  val size_bits : t -> int
  (** Total causality metadata across all keys. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Live instrumentation}

    Off by default.  When attached, every {!Make.sync} bumps
    [kvs_sync_rounds_total] and charges the anti-entropy walk to the
    delta ledger: [kvs_sync_shipped_bytes_total] (both replicas' stamp
    metadata per shared key plus the candidate values that change
    hands), [kvs_sync_minimal_bytes_total] (the frontier-exchange
    minimum: nothing for equivalent keys, the dominant side only for
    ordered ones), [kvs_sync_redundant_bytes_total] (their difference)
    and the [kvs_sync_delta_efficiency] gauge (running
    [minimal / shipped]).  Counters are shared by every instantiation
    of {!Make}. *)
module Obs : sig
  val attach : ?registry:Vstamp_obs.Registry.t -> unit -> unit
  (** Start counting into [registry] (default
      {!Vstamp_obs.Registry.default}).  Re-attaching rebinds to the
      registry given last. *)

  val detach : unit -> unit

  val attached : unit -> bool
end

module Over_tree : module type of Make (Vstamp_core.Stamp.Over_tree)

module Over_list : module type of Make (Vstamp_core.Stamp.Over_list)

module Over_packed : module type of Make (Vstamp_core.Stamp.Over_packed)

include module type of Over_tree
(** The default (tree-backed) instantiation. *)
