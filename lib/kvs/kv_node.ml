open Vstamp_vv
module Smap = Map.Make (String)

(* Optional live instrumentation, off by default: when attached, every
   client-facing operation and anti-entropy round counts into a
   registry, the feed the embedded telemetry server exposes.  Counters
   are resolved once at attach time so the per-op cost when enabled is
   one load and one increment. *)
module Obs = struct
  module R = Vstamp_obs.Registry
  module M = Vstamp_obs.Metric

  type counters = {
    get : M.counter;
    put : M.counter;
    delete : M.counter;
    anti_entropy : M.counter;
    siblings : M.histogram;  (* sibling values returned per get *)
    size_bits : M.histogram;  (* node metadata after anti-entropy *)
  }

  let state : counters option ref = ref None

  let attach ?(registry = R.default) () =
    let op o = R.counter registry (R.with_labels "kvs_ops_total" [ ("op", o) ]) in
    state :=
      Some
        {
          get = op "get";
          put = op "put";
          delete = op "delete";
          anti_entropy = op "anti_entropy";
          siblings = R.histogram registry "kvs_get_siblings";
          size_bits = R.histogram registry "kvs_node_size_bits";
        }

  let detach () = state := None

  let attached () = Option.is_some !state

  let[@inline] on f = match !state with Some c -> f c | None -> ()
end

type t = { id : Version_vector.id; entries : string Dotted_vv.t Smap.t }
(* One server replica of the whole keyspace.  Each key is tracked
   independently with a dotted version vector; entries whose sibling set
   is empty are kept as tombstone contexts so deleted writes cannot be
   resurrected by anti-entropy with a stale peer. *)

let create ~id = { id; entries = Smap.empty }

let id node = node.id

let entry node key =
  match Smap.find_opt key node.entries with
  | Some e -> e
  | None -> Dotted_vv.empty

let keys node =
  Smap.bindings node.entries
  |> List.filter_map (fun (k, e) ->
         if Dotted_vv.is_empty e then None else Some k)

let tombstones node =
  Smap.bindings node.entries
  |> List.filter_map (fun (k, e) ->
         if Dotted_vv.is_empty e then Some k else None)

let get node key =
  let values, context = Dotted_vv.get (entry node key) in
  Obs.on (fun c ->
      Vstamp_obs.Metric.inc c.Obs.get;
      Vstamp_obs.Metric.observe_int c.Obs.siblings (List.length values));
  (values, context)

let put node ~key ~context value =
  Obs.on (fun c -> Vstamp_obs.Metric.inc c.Obs.put);
  let e = Dotted_vv.put (entry node key) ~replica:node.id ~context value in
  { node with entries = Smap.add key e node.entries }

(* A delete is a causal overwrite with no replacement value: siblings the
   client saw disappear; concurrent writes survive.  The context lives on
   as a tombstone. *)
let delete node ~key ~context =
  Obs.on (fun c -> Vstamp_obs.Metric.inc c.Obs.delete);
  match Smap.find_opt key node.entries with
  | None -> node
  | Some e ->
      let e' = Dotted_vv.remove_covered e ~context in
      { node with entries = Smap.add key e' node.entries }

let conflict node key = Dotted_vv.conflict (entry node key)

let size_bits node =
  Smap.fold (fun _ e acc -> acc + Dotted_vv.size_bits e) node.entries 0

let anti_entropy a b =
  let all_keys =
    List.sort_uniq compare
      (List.map fst (Smap.bindings a.entries)
      @ List.map fst (Smap.bindings b.entries))
  in
  let merged =
    List.map (fun k -> (k, Dotted_vv.sync (entry a k) (entry b k))) all_keys
  in
  let apply node =
    {
      node with
      entries =
        List.fold_left
          (fun acc (k, e) -> Smap.add k e acc)
          node.entries merged;
    }
  in
  let a' = apply a and b' = apply b in
  Obs.on (fun c ->
      Vstamp_obs.Metric.inc c.Obs.anti_entropy;
      Vstamp_obs.Metric.observe_int c.Obs.size_bits (size_bits a');
      Vstamp_obs.Metric.observe_int c.Obs.size_bits (size_bits b'));
  (a', b')

let converged a b =
  let all_keys =
    List.sort_uniq compare
      (List.map fst (Smap.bindings a.entries)
      @ List.map fst (Smap.bindings b.entries))
  in
  List.for_all
    (fun k ->
      List.sort compare (Dotted_vv.values (entry a k))
      = List.sort compare (Dotted_vv.values (entry b k)))
    all_keys

let pp ppf node =
  Format.fprintf ppf "node %d:@." node.id;
  Smap.iter
    (fun k e ->
      Format.fprintf ppf "  %-12s %a@." k
        (Dotted_vv.pp (fun ppf v -> Format.pp_print_string ppf v))
        e)
    node.entries
