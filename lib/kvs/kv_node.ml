open Vstamp_vv
module Smap = Map.Make (String)

type t = { id : Version_vector.id; entries : string Dotted_vv.t Smap.t }
(* One server replica of the whole keyspace.  Each key is tracked
   independently with a dotted version vector; entries whose sibling set
   is empty are kept as tombstone contexts so deleted writes cannot be
   resurrected by anti-entropy with a stale peer. *)

let create ~id = { id; entries = Smap.empty }

let id node = node.id

let entry node key =
  match Smap.find_opt key node.entries with
  | Some e -> e
  | None -> Dotted_vv.empty

let keys node =
  Smap.bindings node.entries
  |> List.filter_map (fun (k, e) ->
         if Dotted_vv.is_empty e then None else Some k)

let tombstones node =
  Smap.bindings node.entries
  |> List.filter_map (fun (k, e) ->
         if Dotted_vv.is_empty e then Some k else None)

let get node key = Dotted_vv.get (entry node key)

let put node ~key ~context value =
  let e = Dotted_vv.put (entry node key) ~replica:node.id ~context value in
  { node with entries = Smap.add key e node.entries }

(* A delete is a causal overwrite with no replacement value: siblings the
   client saw disappear; concurrent writes survive.  The context lives on
   as a tombstone. *)
let delete node ~key ~context =
  match Smap.find_opt key node.entries with
  | None -> node
  | Some e ->
      let e' = Dotted_vv.remove_covered e ~context in
      { node with entries = Smap.add key e' node.entries }

let conflict node key = Dotted_vv.conflict (entry node key)

let anti_entropy a b =
  let all_keys =
    List.sort_uniq compare
      (List.map fst (Smap.bindings a.entries)
      @ List.map fst (Smap.bindings b.entries))
  in
  let merged =
    List.map (fun k -> (k, Dotted_vv.sync (entry a k) (entry b k))) all_keys
  in
  let apply node =
    {
      node with
      entries =
        List.fold_left
          (fun acc (k, e) -> Smap.add k e acc)
          node.entries merged;
    }
  in
  (apply a, apply b)

let converged a b =
  let all_keys =
    List.sort_uniq compare
      (List.map fst (Smap.bindings a.entries)
      @ List.map fst (Smap.bindings b.entries))
  in
  List.for_all
    (fun k ->
      List.sort compare (Dotted_vv.values (entry a k))
      = List.sort compare (Dotted_vv.values (entry b k)))
    all_keys

let size_bits node =
  Smap.fold (fun _ e acc -> acc + Dotted_vv.size_bits e) node.entries 0

let pp ppf node =
  Format.fprintf ppf "node %d:@." node.id;
  Smap.iter
    (fun k e ->
      Format.fprintf ppf "  %-12s %a@." k
        (Dotted_vv.pp (fun ppf v -> Format.pp_print_string ppf v))
        e)
    node.entries
