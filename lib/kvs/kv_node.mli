(** A server replica of a replicated key-value store.

    The Riak/Dynamo architecture in miniature: a {e fixed} set of server
    nodes (each with a unique id — the data-center side of the identity
    question) accepts gets, puts and deletes from anonymous clients, and
    reconciles pairwise by anti-entropy.  Per-key causality uses
    {!Vstamp_vv.Dotted_vv}: a put echoing the context of a previous get
    causally overwrites exactly what that get returned; concurrent writes
    survive as siblings; deletes leave tombstone contexts so stale peers
    cannot resurrect removed writes.

    Contrast with {!Vstamp_panasync} and {!Vstamp_crdt.Mv_register},
    which solve the same conflict-detection problem for the {e
    peer-to-peer} side of the world using version stamps, where replicas
    cannot be given server ids at all. *)

type t

val create : id:Vstamp_vv.Version_vector.id -> t
(** A server with a unique, externally assigned id. *)

val id : t -> Vstamp_vv.Version_vector.id

val entry : t -> string -> string Vstamp_vv.Dotted_vv.t
(** The tracked state of one key (empty entry for unknown keys). *)

val keys : t -> string list
(** Keys with at least one live value, sorted. *)

val tombstones : t -> string list
(** Keys whose values were all deleted but whose causal context remains. *)

val get : t -> string -> string list * Vstamp_vv.Version_vector.t
(** Client read: sibling values plus the causal context to echo into the
    next {!put} or {!delete} of that key. *)

val put :
  t -> key:string -> context:Vstamp_vv.Version_vector.t -> string -> t
(** Client write through this server. *)

val delete : t -> key:string -> context:Vstamp_vv.Version_vector.t -> t
(** Causal delete: removes the siblings the client had seen; concurrent
    writes survive. *)

val conflict : t -> string -> bool
(** Multiple sibling values currently stored for the key. *)

val anti_entropy : t -> t -> t * t
(** Pairwise reconciliation over the union of the two nodes' keys; both
    nodes leave with identical entries. *)

val converged : t -> t -> bool
(** Same live values for every key. *)

val size_bits : t -> int
(** Total causality metadata. *)

val pp : Format.formatter -> t -> unit

(** {1 Live instrumentation}

    Off by default.  When attached, every {!get} / {!put} / {!delete}
    and {!anti_entropy} round counts into
    [kvs_ops_total{op=...}] counters, each get's sibling width into the
    [kvs_get_siblings] histogram, and both nodes' causality-metadata
    size after every anti-entropy round into [kvs_node_size_bits] — the
    feed behind the [/metrics] endpoint of a soaking store. *)
module Obs : sig
  val attach : ?registry:Vstamp_obs.Registry.t -> unit -> unit
  (** Start counting into [registry] (default
      {!Vstamp_obs.Registry.default}).  Re-attaching rebinds to the
      registry given last. *)

  val detach : unit -> unit

  val attached : unit -> bool
end
