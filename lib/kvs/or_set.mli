(** An observed-remove set on the dot kernel.

    The foundation of the same authors' delta-CRDT line (Almeida, Shoker
    & Baquero, 2015 onward): every {!add} creates a uniquely dotted
    instance of the element; {!remove} drops the instances this replica
    has observed; the causal context remembers every dot ever seen, so a
    {!merge} with a stale peer cannot reintroduce removed instances.
    Concurrent add and remove of the same element resolve add-wins: the
    fresh dot escapes the remover's context.

    The causal context is a version vector plus a {e dot cloud} for
    non-contiguous dots — exactly what lets a delta say "I have seen
    precisely this one dot" (a plain vector cannot), which is the crux of
    the delta construction.

    Replicas need unique ids (like {!Kv_node}, unlike version stamps) —
    this module completes the repository's survey of the dotted,
    server-id side of the design space. *)

type 'a t

val create : id:Vstamp_vv.Version_vector.id -> 'a t
(** An empty set replica with a unique id. *)

val replica : 'a t -> Vstamp_vv.Version_vector.id

val elements : 'a t -> 'a list
(** Distinct elements, sorted. *)

val mem : 'a t -> 'a -> bool

val cardinal : 'a t -> int
(** Number of distinct elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> 'a t
(** Add (another dotted instance of) an element. *)

val remove : 'a t -> 'a -> 'a t
(** Remove every instance of the element this replica currently
    observes.  A no-op if absent. *)

val clear : 'a t -> 'a t
(** Remove everything observed. *)

val merge : 'a t -> 'a t -> 'a t
(** Dot-kernel join: commutative, associative, idempotent; removed
    instances never resurface; concurrent adds win over removes. *)

(** {1 Delta mutators}

    A delta is a small set-state shipping only the change; {!apply_delta}
    is the same dot-kernel join, so deltas compose by {!merge} and can be
    buffered, batched and re-sent freely (join is idempotent). *)

val add_delta : 'a t -> 'a -> 'a t
(** The delta an {!add} would produce.  Apply locally {e and} remotely:
    [apply_delta s (add_delta s v)] equals [add s v]. *)

val remove_delta : 'a t -> 'a -> 'a t
(** The delta of removing every observed instance of [v]: pure causal
    context, no entries. *)

val apply_delta : 'a t -> 'a t -> 'a t
(** Join a delta (or any remote state) into a replica, keeping the
    replica's identity. *)

val well_formed : 'a t -> bool
(** Every live dot is covered by the context. *)

val size_bits : 'a t -> int
(** Metadata size (context plus instance dots). *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
