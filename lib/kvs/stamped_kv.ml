open Vstamp_core
module Engine = Vstamp_sync.Engine
module Ledger = Vstamp_sync.Ledger

(* Optional live instrumentation, off by default (mirrors Sync.Obs):
   when attached, every {!Make.sync} charges the anti-entropy walk to
   the delta ledger — bytes a full exchange ships (both replicas' stamp
   metadata per shared key, plus the candidate values that change
   hands) against the minimal frontier-exchange delta.  The counters
   are the shared {!Vstamp_sync.Ledger} family under the [kvs_sync_]
   prefix, shared by every instantiation of {!Make}. *)
module Obs = struct
  module R = Vstamp_obs.Registry

  let state : Ledger.counters option ref = ref None

  let attach ?(registry = R.default) () =
    state := Some (Ledger.counters ~registry ~prefix:"kvs_sync_" ())

  let detach () = state := None

  let attached () = Option.is_some !state
end

module Make (S : Stamp.S) = struct
  module R = Vstamp_crdt.Mv_register.Make (S)
  module Smap = Map.Make (String)

  type t = string R.t Smap.t

  let empty : t = Smap.empty

  let keys t = List.map fst (Smap.bindings t)

  let mem t key = Smap.mem key t

  let get t key =
    match Smap.find_opt key t with None -> [] | Some r -> R.read r

  let stamp t key =
    Option.map R.stamp (Smap.find_opt key t)

  let put t ~key value =
    let r =
      match Smap.find_opt key t with
      | Some r -> R.write r value
      | None -> R.create value
    in
    Smap.add key r t

  let remove t key = Smap.remove key t

  let resolve t ~key ~value =
    match Smap.find_opt key t with
    | None -> put t ~key value
    | Some r -> Smap.add key (R.resolve r ~value) t

  let conflict t key =
    match Smap.find_opt key t with
    | Some r -> R.is_conflicted r
    | None -> false

  let value_bytes r =
    List.fold_left (fun acc v -> acc + String.length v) 0 (R.read r)

  (* The engine store adapter: keys map to multi-value registers, the
     register's stamp is the frontier metadata, and the digest
     fingerprints the sorted candidate set (equal digests mean a reader
     cannot tell the replicas apart). *)
  module ES = struct
    type nonrec t = t

    type item = string R.t

    type meta = S.t

    let keys = keys

    let find t key = Smap.find_opt key t

    let set t key item = Smap.add key item t

    let meta_of = R.stamp

    let relation = S.relation

    let meta_bytes m = (S.size_bits m + 7) / 8

    let payload_bytes = value_bytes

    let digest item =
      Digest.string (String.concat "\x00" (List.sort compare (R.read item)))

    let of_meta ~key:_ m = R.restore ~stamp:m []
  end

  module E = Engine.Make (ES)

  (* One key's reconciliation: charge the walk on the {e pre}-sync
     registers (what an exchange of the current replicas ships), then
     let the register merge and re-fork.  A full walk ships both stamps
     and the candidate values that change hands; the frontier-exchange
     minimum skips equivalent keys entirely and ships only the dominant
     side for ordered ones. *)
  let engine_config =
    {
      E.reconcile =
        (fun ~key:_ ra rb ->
          let ma = ES.meta_bytes (R.stamp ra)
          and mb = ES.meta_bytes (R.stamp rb) in
          let relation = R.relation ra rb in
          let payload =
            match relation with
            | Relation.Equal -> 0
            | Relation.Dominates -> value_bytes ra
            | Relation.Dominated -> value_bytes rb
            | Relation.Concurrent -> value_bytes ra + value_bytes rb
          in
          let ra', rb' = R.sync ra rb in
          {
            E.item_a = ra';
            item_b = rb';
            relation;
            outcome = Engine.outcome_of_relation relation;
            charge = { Engine.meta_a = ma; meta_b = mb; payload };
          });
      replicate = R.fork;
    }

  let spans =
    { E.span_session = "kvs.sync"; span_apply = "kvs.apply"; unit_key = "keys" }

  let sync a b =
    let a, b, _reports =
      E.session ?ledger:!Obs.state ~spans engine_config a b
    in
    (a, b)

  (* --- wire-level legs ---

     The same session, split for a transport: each leg takes and
     returns plain serializable data (stamps and strings), so the
     framed protocol in [Vstamp_net] can ship them and still produce
     byte-identical stores.  The legs deliberately do not touch the
     attached [kvs_sync_*] ledger — a networked round accounts to its
     own [tally]. *)

  type frontier = (string * S.t * string) list

  type delta = (string * S.t * string list) list

  let to_frontier fs =
    List.map (fun f -> (f.E.f_key, f.E.f_meta, f.E.f_digest)) fs

  let of_frontier fs =
    List.map (fun (k, m, d) -> { E.f_key = k; f_meta = m; f_digest = d }) fs

  let to_delta es =
    List.map (fun e -> (e.E.e_key, R.stamp e.E.e_item, R.read e.E.e_item)) es

  let of_delta es =
    List.map
      (fun (k, stamp, vs) -> { E.e_key = k; e_item = R.restore ~stamp vs })
      es

  let offer t = to_frontier (E.offer t)

  let wants t frontier = E.wants t (of_frontier frontier)

  let fulfil t wanted = to_delta (E.fulfil t wanted)

  let reconcile ?tally t frontier items =
    let t, results, _reports =
      E.reconcile ?tally engine_config t (of_frontier frontier)
        (of_delta items)
    in
    (t, to_delta results)

  let apply t results = E.apply t (of_delta results)

  let converged a b =
    List.for_all
      (fun key ->
        match (Smap.find_opt key a, Smap.find_opt key b) with
        | Some ra, Some rb ->
            List.sort compare (R.read ra) = List.sort compare (R.read rb)
        | _ -> false)
      (List.sort_uniq String.compare (keys a @ keys b))

  let size_bits t =
    Smap.fold (fun _ r acc -> acc + S.size_bits (R.stamp r)) t 0

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:Format.pp_print_space
      (fun ppf (key, r) ->
        Format.fprintf ppf "%s=%a" key (R.pp Format.pp_print_string) r)
      ppf (Smap.bindings t)
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)
module Over_packed = Make (Stamp.Over_packed)

include Over_tree
