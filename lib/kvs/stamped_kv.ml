open Vstamp_core

module Make (S : Stamp.S) = struct
  module R = Vstamp_crdt.Mv_register.Make (S)
  module Smap = Map.Make (String)

  type t = string R.t Smap.t

  let empty : t = Smap.empty

  let keys t = List.map fst (Smap.bindings t)

  let mem t key = Smap.mem key t

  let get t key =
    match Smap.find_opt key t with None -> [] | Some r -> R.read r

  let stamp t key =
    Option.map R.stamp (Smap.find_opt key t)

  let put t ~key value =
    let r =
      match Smap.find_opt key t with
      | Some r -> R.write r value
      | None -> R.create value
    in
    Smap.add key r t

  let remove t key = Smap.remove key t

  let resolve t ~key ~value =
    match Smap.find_opt key t with
    | None -> put t ~key value
    | Some r -> Smap.add key (R.resolve r ~value) t

  let conflict t key =
    match Smap.find_opt key t with
    | Some r -> R.is_conflicted r
    | None -> false

  let sync a b =
    let all_keys =
      List.sort_uniq String.compare (keys a @ keys b)
    in
    List.fold_left
      (fun (a, b) key ->
        match (Smap.find_opt key a, Smap.find_opt key b) with
        | None, None -> (a, b)
        | Some r, None ->
            let mine, theirs = R.fork r in
            (Smap.add key mine a, Smap.add key theirs b)
        | None, Some r ->
            let theirs, mine = R.fork r in
            (Smap.add key mine a, Smap.add key theirs b)
        | Some ra, Some rb ->
            let ra, rb = R.sync ra rb in
            (Smap.add key ra a, Smap.add key rb b))
      (a, b) all_keys

  let converged a b =
    List.for_all
      (fun key ->
        match (Smap.find_opt key a, Smap.find_opt key b) with
        | Some ra, Some rb ->
            List.sort compare (R.read ra) = List.sort compare (R.read rb)
        | _ -> false)
      (List.sort_uniq String.compare (keys a @ keys b))

  let size_bits t =
    Smap.fold (fun _ r acc -> acc + S.size_bits (R.stamp r)) t 0

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:Format.pp_print_space
      (fun ppf (key, r) ->
        Format.fprintf ppf "%s=%a" key (R.pp Format.pp_print_string) r)
      ppf (Smap.bindings t)
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)
module Over_packed = Make (Stamp.Over_packed)

include Over_tree
