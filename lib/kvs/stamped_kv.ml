open Vstamp_core

(* Optional live instrumentation, off by default (mirrors Sync.Obs):
   when attached, every {!Make.sync} charges the anti-entropy walk to
   the delta ledger — bytes a full exchange ships (both replicas' stamp
   metadata per shared key, plus the candidate values that change
   hands) against the minimal frontier-exchange delta.  Counters are
   shared by every instantiation of {!Make}. *)
module Obs = struct
  module R = Vstamp_obs.Registry
  module M = Vstamp_obs.Metric

  type counters = {
    rounds : M.counter;  (* kvs_sync_rounds_total *)
    shipped : M.counter;  (* kvs_sync_shipped_bytes_total *)
    minimal : M.counter;  (* kvs_sync_minimal_bytes_total *)
    redundant : M.counter;  (* kvs_sync_redundant_bytes_total *)
    efficiency : M.gauge;  (* kvs_sync_delta_efficiency *)
  }

  let state : counters option ref = ref None

  let attach ?(registry = R.default) () =
    state :=
      Some
        {
          rounds = R.counter registry "kvs_sync_rounds_total";
          shipped = R.counter registry "kvs_sync_shipped_bytes_total";
          minimal = R.counter registry "kvs_sync_minimal_bytes_total";
          redundant = R.counter registry "kvs_sync_redundant_bytes_total";
          efficiency = R.gauge registry "kvs_sync_delta_efficiency";
        }

  let detach () = state := None

  let attached () = Option.is_some !state

  let[@inline] on f = match !state with Some c -> f c | None -> ()

  let account c ~shipped ~minimal =
    M.add c.shipped shipped;
    M.add c.minimal minimal;
    M.add c.redundant (shipped - minimal);
    let s = M.count c.shipped in
    M.set c.efficiency
      (if s = 0 then 1. else float_of_int (M.count c.minimal) /. float_of_int s)
end

module Make (S : Stamp.S) = struct
  module R = Vstamp_crdt.Mv_register.Make (S)
  module Smap = Map.Make (String)

  type t = string R.t Smap.t

  let empty : t = Smap.empty

  let keys t = List.map fst (Smap.bindings t)

  let mem t key = Smap.mem key t

  let get t key =
    match Smap.find_opt key t with None -> [] | Some r -> R.read r

  let stamp t key =
    Option.map R.stamp (Smap.find_opt key t)

  let put t ~key value =
    let r =
      match Smap.find_opt key t with
      | Some r -> R.write r value
      | None -> R.create value
    in
    Smap.add key r t

  let remove t key = Smap.remove key t

  let resolve t ~key ~value =
    match Smap.find_opt key t with
    | None -> put t ~key value
    | Some r -> Smap.add key (R.resolve r ~value) t

  let conflict t key =
    match Smap.find_opt key t with
    | Some r -> R.is_conflicted r
    | None -> false

  let meta_bytes r = (S.size_bits (R.stamp r) + 7) / 8

  let value_bytes r =
    List.fold_left (fun acc v -> acc + String.length v) 0 (R.read r)

  (* One key's wire charge: a full anti-entropy walk ships both stamps
     and the candidate values that change hands; the frontier-exchange
     minimum skips equivalent keys entirely and ships only the dominant
     side for ordered ones. *)
  let account_pair ra rb =
    Obs.on (fun c ->
        let ma = meta_bytes ra and mb = meta_bytes rb in
        let shipped, minimal =
          match R.relation ra rb with
          | Relation.Equal -> (ma + mb, 0)
          | Relation.Dominates ->
              let v = value_bytes ra in
              (ma + mb + v, ma + v)
          | Relation.Dominated ->
              let v = value_bytes rb in
              (ma + mb + v, mb + v)
          | Relation.Concurrent ->
              let v = value_bytes ra + value_bytes rb in
              (ma + mb + v, ma + mb + v)
        in
        Obs.account c ~shipped ~minimal)

  (* A key held by one side only: stamp and values must ship anyway. *)
  let account_replicated r =
    Obs.on (fun c ->
        let b = meta_bytes r + value_bytes r in
        Obs.account c ~shipped:b ~minimal:b)

  let sync_body a b =
    Obs.on (fun c -> Vstamp_obs.Metric.inc c.Obs.rounds);
    let all_keys =
      List.sort_uniq String.compare (keys a @ keys b)
    in
    List.fold_left
      (fun (a, b) key ->
        match (Smap.find_opt key a, Smap.find_opt key b) with
        | None, None -> (a, b)
        | Some r, None ->
            account_replicated r;
            let mine, theirs = R.fork r in
            (Smap.add key mine a, Smap.add key theirs b)
        | None, Some r ->
            account_replicated r;
            let theirs, mine = R.fork r in
            (Smap.add key mine a, Smap.add key theirs b)
        | Some ra, Some rb ->
            account_pair ra rb;
            let ra, rb = R.sync ra rb in
            (Smap.add key ra a, Smap.add key rb b))
      (a, b) all_keys

  (* One anti-entropy walk is one span; the trace context rides the
     exchange envelope and the apply side continues the trace from the
     extracted header (see [Sync.session] for the same pattern). *)
  let sync a b =
    let module Tr = Vstamp_obs.Trace_ctx in
    let module J = Vstamp_obs.Jsonx in
    if not (Tr.attached ()) then sync_body a b
    else
      Tr.with_span "kvs.sync" (fun () ->
          let header =
            match Tr.current () with
            | Some ctx -> Tr.to_header ctx
            | None -> ""
          in
          let keys_n =
            List.length (List.sort_uniq String.compare (keys a @ keys b))
          in
          let a, b = sync_body a b in
          Tr.annotate [ ("keys", J.Int keys_n) ];
          Tr.with_remote_span ~header
            ~attrs:[ ("keys", J.Int keys_n) ]
            "kvs.apply"
            (fun () -> ());
          (a, b))

  let converged a b =
    List.for_all
      (fun key ->
        match (Smap.find_opt key a, Smap.find_opt key b) with
        | Some ra, Some rb ->
            List.sort compare (R.read ra) = List.sort compare (R.read rb)
        | _ -> false)
      (List.sort_uniq String.compare (keys a @ keys b))

  let size_bits t =
    Smap.fold (fun _ r acc -> acc + S.size_bits (R.stamp r)) t 0

  let pp ppf t =
    Format.pp_print_list
      ~pp_sep:Format.pp_print_space
      (fun ppf (key, r) ->
        Format.fprintf ppf "%s=%a" key (R.pp Format.pp_print_string) r)
      ppf (Smap.bindings t)
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)
module Over_packed = Make (Stamp.Over_packed)

include Over_tree
