open Vstamp_core

module Make (S : Stamp.S) = struct
  type 'a t = { stamp : S.t; values : 'a list }
  (* [values] are the concurrent candidates, newest write first.  A
     single value means no unresolved conflict.  The stamp tracks the
     causal knowledge of this replica of the register. *)

  let create value = { stamp = S.update S.seed; values = [ value ] }

  let restore ~stamp values =
    if not (S.well_formed stamp) then
      invalid_arg "Mv_register.restore: ill-formed stamp"
    else { stamp; values }

  let stamp r = r.stamp

  let read r = r.values

  let value_exn r =
    match r.values with
    | [ v ] -> v
    | vs ->
        invalid_arg
          (Printf.sprintf "Mv_register.value_exn: %d concurrent values"
             (List.length vs))

  let is_conflicted r = match r.values with [ _ ] -> false | _ -> true

  let write r value = { stamp = S.update r.stamp; values = [ value ] }

  let fork r =
    let a, b = S.fork r.stamp in
    ({ r with stamp = a }, { r with stamp = b })

  (* Merge two register replicas.  If one side dominates, its candidates
     win outright; concurrent sides union their candidates (the multiple
     values a reader must reconcile). *)
  let merge ?(equal = ( = )) a b =
    let stamp = S.join a.stamp b.stamp in
    let values =
      match S.relation a.stamp b.stamp with
      | Relation.Equal | Relation.Dominates -> a.values
      | Relation.Dominated -> b.values
      | Relation.Concurrent ->
          List.fold_left
            (fun acc v -> if List.exists (equal v) acc then acc else acc @ [ v ])
            a.values b.values
    in
    { stamp; values }

  let sync ?equal a b =
    let merged = merge ?equal a b in
    let sa, sb = S.fork merged.stamp in
    ({ merged with stamp = sa }, { merged with stamp = sb })

  let resolve r ~value = { stamp = S.update r.stamp; values = [ value ] }

  let relation a b = S.relation a.stamp b.stamp

  let pp pp_value ppf r =
    Format.fprintf ppf "%a=[%a]" S.pp r.stamp
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp_value)
      r.values
end

module Over_tree = Make (Stamp.Over_tree)
module Over_list = Make (Stamp.Over_list)
module Over_packed = Make (Stamp.Over_packed)

include Over_tree
