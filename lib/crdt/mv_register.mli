(** A multi-value register replicated with version stamps.

    The Dynamo-style register: each replica carries the causal knowledge
    of its writes in a version stamp.  A write overwrites; a merge keeps
    the dominant side's value, or — when the writes were genuinely
    concurrent — presents {e all} candidate values for the application
    to reconcile.  Because stamps fork locally, register replicas can be
    created anywhere, including inside a network partition, with no id
    service. *)

module Make (S : Vstamp_core.Stamp.S) : sig
  type 'a t
  (** A register replica holding values of type ['a]. *)

  val create : 'a -> 'a t
  (** A fresh register seeded with an initial value (counts as the first
      write). *)

  val restore : stamp:S.t -> 'a list -> 'a t
  (** Rebuild a replica from transported parts (wire decoding, or a
      payload-less phantom for anti-entropy frontier entries).
      @raise Invalid_argument if the stamp is ill-formed. *)

  val stamp : 'a t -> S.t

  val read : 'a t -> 'a list
  (** Current candidates; a singleton when there is no unresolved
      conflict. *)

  val value_exn : 'a t -> 'a
  (** @raise Invalid_argument when multiple concurrent values exist. *)

  val is_conflicted : 'a t -> bool

  val write : 'a t -> 'a -> 'a t
  (** Local write: replaces all candidates and records an update. *)

  val fork : 'a t -> 'a t * 'a t
  (** Replicate the register — fully local. *)

  val merge : ?equal:('a -> 'a -> bool) -> 'a t -> 'a t -> 'a t
  (** One-way merge into a single surviving replica.  [equal] (default
      structural) deduplicates candidates of concurrent writes. *)

  val sync : ?equal:('a -> 'a -> bool) -> 'a t -> 'a t -> 'a t * 'a t
  (** Two-way synchronization: both replicas stay alive with the merged
      candidates and fresh coexisting identities. *)

  val resolve : 'a t -> value:'a -> 'a t
  (** Settle a conflict: the chosen value becomes a new write. *)

  val relation : 'a t -> 'a t -> Vstamp_core.Relation.t

  val pp :
    (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end

module Over_tree : module type of Make (Vstamp_core.Stamp.Over_tree)

module Over_list : module type of Make (Vstamp_core.Stamp.Over_list)

module Over_packed : module type of Make (Vstamp_core.Stamp.Over_packed)

include module type of Over_tree
(** Registers over the default trie-backed stamps. *)
